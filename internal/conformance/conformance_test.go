// Package conformance cross-validates the three incarnations of the
// coordinated caching protocol — the trace-replay simulator scheme
// (internal/scheme driven by internal/sim), the message-passing actor
// cluster (internal/runtime) and the HTTP gateway chain (internal/httpgw) —
// against each other. All three are thin transport adapters over
// internal/engine; replaying the same request sequence through each must
// yield the same serving node and the same placement set for every single
// request.
//
// The workload uses uniform object sizes so the three cost conventions
// coincide exactly: the simulator scales link delays by size/avgSize
// (scale 1), the cluster by size/AvgObjectSize (scale 1), and the gateway
// uses per-node static link costs.
package conformance

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cascade/internal/audit"
	"cascade/internal/httpgw"
	"cascade/internal/model"
	"cascade/internal/runtime"
	"cascade/internal/scheme"
	"cascade/internal/sim"
	"cascade/internal/topology"
	"cascade/internal/trace"
)

// chainNet is a single linear cascade: every client attaches at cache 0,
// the origin sits past the last cache. It is the topology an HTTP gateway
// chain physically realizes, so all three incarnations can share it.
type chainNet struct {
	route topology.Route
}

func newChainNet(upCost []float64, originLink bool) *chainNet {
	caches := make([]model.NodeID, len(upCost))
	for i := range caches {
		caches[i] = model.NodeID(i)
	}
	return &chainNet{route: topology.Route{Caches: caches, UpCost: upCost, OriginLink: originLink}}
}

func (n *chainNet) NumCaches() int                         { return len(n.route.Caches) }
func (n *chainNet) ClientAttachPoints() []model.NodeID     { return n.route.Caches[:1] }
func (n *chainNet) ServerAttachPoints() []model.NodeID     { return []model.NodeID{model.NoNode} }
func (n *chainNet) Route(_, _ model.NodeID) topology.Route { return n.route }

// recorder wraps the coordinated scheme so the simulator incarnation
// exposes each request's raw Outcome (sim.Process reports aggregated
// samples only).
type recorder struct {
	inner *scheme.Coordinated
	last  scheme.Outcome
}

func (r *recorder) Name() string                                   { return r.inner.Name() }
func (r *recorder) Configure(b map[model.NodeID]scheme.NodeBudget) { r.inner.Configure(b) }

func (r *recorder) Process(now float64, obj model.ObjectID, size int64, path scheme.Path) scheme.Outcome {
	out := r.inner.Process(now, obj, size, path)
	// Placed aliases the scheme's scratch; copy so the caller may compare
	// after the fact.
	out.Placed = append([]int(nil), out.Placed...)
	r.last = out
	return out
}

// logicalClock injects deterministic, race-safe time into the cluster and
// every gateway node.
type logicalClock struct {
	mu  sync.Mutex
	now float64
}

func (c *logicalClock) Set(t float64) { c.mu.Lock(); c.now = t; c.mu.Unlock() }
func (c *logicalClock) Now() float64  { c.mu.Lock(); defer c.mu.Unlock(); return c.now }

// gatewayChain builds origin ← node(L-1) ← … ← node0 over httptest servers
// and returns node0's base URL, the nodes bottom-up (each carries its own
// auditor, ledger and flight recorder — NewNode wires them by default) and
// the origin, whose decision-side observability is enabled too.
func gatewayChain(t *testing.T, upCost []float64, capacity int64, dEntries int, objSize int, clock func() float64) (string, []*httpgw.Node, *httpgw.Origin) {
	t.Helper()
	o := &httpgw.Origin{Size: func(model.ObjectID) int { return objSize }}
	o.EnableObservability(64, clock)
	origin := httptest.NewServer(o)
	t.Cleanup(origin.Close)
	upstream := origin.URL
	nodes := make([]*httpgw.Node, len(upCost))
	for i := len(upCost) - 1; i >= 0; i-- {
		n := httpgw.NewNode(model.NodeID(i), upstream, upCost[i], capacity, dEntries, clock)
		srv := httptest.NewServer(n)
		t.Cleanup(srv.Close)
		upstream = srv.URL
		nodes[i] = n
	}
	return upstream, nodes, o
}

// gatewayGet issues one request to the chain and returns the serving node
// (model.NoNode for the origin) and the sorted placement set.
func gatewayGet(t *testing.T, client *http.Client, base string, obj model.ObjectID) (model.NodeID, []model.NodeID) {
	t.Helper()
	resp, err := client.Get(base + "/objects/" + strconv.Itoa(int(obj)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("object %d: status %d", obj, resp.StatusCode)
	}
	served := model.NoNode
	if h := resp.Header.Get(httpgw.HeaderHit); h != "origin" {
		id, err := strconv.Atoi(h)
		if err != nil {
			t.Fatalf("object %d: bad %s header %q", obj, httpgw.HeaderHit, h)
		}
		served = model.NodeID(id)
	}
	var placed []model.NodeID
	for _, p := range strings.Split(resp.Header.Get(httpgw.HeaderPlace), ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		id, err := strconv.Atoi(p)
		if err != nil {
			t.Fatalf("object %d: bad %s header %q", obj, httpgw.HeaderPlace, resp.Header.Get(httpgw.HeaderPlace))
		}
		placed = append(placed, model.NodeID(id))
	}
	return served, placed
}

func sortNodes(ns []model.NodeID) []model.NodeID {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

func nodesEqual(a, b []model.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestThreeIncarnationsAgree replays one trace through all three
// incarnations in lockstep and requires, per request, identical serving
// nodes and identical placement sets. Run under -race (make conformance):
// the cluster's actors and the gateway's HTTP handlers execute on their own
// goroutines even for a serial request stream.
func TestThreeIncarnationsAgree(t *testing.T) {
	cases := []struct {
		name       string
		upCost     []float64
		originLink bool
		rel        float64
	}{
		// Hierarchical cascade: the root–origin link is real.
		{name: "hierarchy", upCost: []float64{1, 2, 4, 8}, originLink: true, rel: 0.02},
		// En-route cascade: the origin co-locates with the top cache.
		{name: "enroute", upCost: []float64{1, 3, 0}, originLink: false, rel: 0.01},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const objSize = 1000 // uniform: all cost scalings collapse to 1
			gen := trace.NewGenerator(trace.Config{
				Objects:  300,
				Servers:  8,
				Clients:  30,
				Requests: 4000,
				Duration: 7200,
				MinSize:  objSize,
				MaxSize:  objSize,
				Seed:     41,
			})
			cat := gen.Catalog()
			avg := cat.AvgSize()
			if avg != objSize {
				t.Fatalf("catalog not uniform: avg size %v", avg)
			}
			net := newChainNet(tc.upCost, tc.originLink)
			route := net.Route(0, model.NoNode)

			// Replicate sim.New's budget math so the cluster and the
			// gateway get byte-identical capacities.
			capacity := int64(tc.rel * float64(cat.TotalBytes))
			dEntries := int(3 * float64(capacity) / avg)

			// All three incarnations run with the online invariant
			// auditor and flight recorders attached: conformance both
			// cross-validates the transports against each other and
			// proves the audited replay is violation-free everywhere.
			const flightCap = 64

			// Incarnation 1: the replay simulator.
			rec := &recorder{inner: scheme.NewCoordinated()}
			rec.inner.SetAuditor(audit.New(nil))
			rec.inner.SetLedger(audit.NewLedger())
			rec.inner.SetFlightCapacity(flightCap)
			simr, err := sim.New(sim.Config{
				Scheme: rec, Network: net, Catalog: cat,
				RelativeCacheSize: tc.rel, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Incarnation 2: the actor cluster.
			clk := &logicalClock{}
			cluster, err := runtime.NewCluster(runtime.Config{
				Network:        net,
				CacheBytes:     capacity,
				DCacheEntries:  dEntries,
				AvgObjectSize:  avg,
				Clock:          clk.Now,
				EnableAudit:    true,
				FlightCapacity: flightCap,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()

			// Incarnation 3: the HTTP gateway chain (audited by default).
			base, gwNodes, gwOrigin := gatewayChain(t, tc.upCost, capacity, dEntries, objSize, clk.Now)
			client := &http.Client{}

			ctx := context.Background()
			hits := 0
			for i := 0; ; i++ {
				req, ok := gen.Next()
				if !ok {
					break
				}
				clk.Set(req.Time)

				simr.Process(req)
				simOut := rec.last
				simServed := model.NoNode
				if simOut.HitIndex < len(route.Caches) {
					simServed = route.Caches[simOut.HitIndex]
					hits++
				}
				simPlaced := make([]model.NodeID, 0, len(simOut.Placed))
				for _, idx := range simOut.Placed {
					simPlaced = append(simPlaced, route.Caches[idx])
				}
				sortNodes(simPlaced)

				clRes, err := cluster.Get(ctx, 0, model.NoNode, req.Object, req.Size)
				if err != nil {
					t.Fatal(err)
				}
				clPlaced := sortNodes(append([]model.NodeID(nil), clRes.Placed...))

				gwServed, gwPlaced := gatewayGet(t, client, base, req.Object)
				sortNodes(gwPlaced)

				if clRes.ServedBy != simServed || gwServed != simServed {
					t.Fatalf("request %d (obj %d): served by sim=%d cluster=%d gateway=%d",
						i, req.Object, simServed, clRes.ServedBy, gwServed)
				}
				if !nodesEqual(clPlaced, simPlaced) || !nodesEqual(gwPlaced, simPlaced) {
					t.Fatalf("request %d (obj %d): placed sim=%v cluster=%v gateway=%v",
						i, req.Object, simPlaced, clPlaced, gwPlaced)
				}
			}
			if hits == 0 {
				t.Fatal("conformance trace produced no cache hits; workload too cold to be meaningful")
			}

			// Every incarnation must have audited the whole run clean —
			// including the gateway origin, which decides every placement
			// that missed the whole chain.
			auditors := map[string]*audit.Auditor{
				"sim":            rec.inner.Auditor(),
				"cluster":        cluster.Auditor(),
				"gateway-origin": gwOrigin.Auditor(),
			}
			for i, n := range gwNodes {
				auditors[fmt.Sprintf("gateway%d", i)] = n.Auditor()
			}
			checks := int64(0)
			for name, a := range auditors {
				if v := a.TotalViolations(); v != 0 {
					t.Errorf("%s: %d invariant violations on a conforming run", name, v)
				}
				for _, iv := range audit.Invariants() {
					checks += a.Checks(iv)
				}
			}
			if checks == 0 {
				t.Fatal("auditors attached but no checks ran")
			}
			// And the flight recorders must have captured the traffic.
			if len(rec.inner.FlightRecorder(0).Events()) == 0 {
				t.Error("simulator flight recorder empty")
			}
			if len(cluster.DumpFlight(0).Events) == 0 {
				t.Error("cluster flight recorder empty")
			}
			if len(gwNodes[0].DumpFlight().Events) == 0 {
				t.Error("gateway flight recorder empty")
			}

			// The cost ledgers must agree across incarnations too. The
			// simulator and the cluster book predictions at the decision
			// site into one shared ledger; the gateway ships each term over
			// X-Cascade-Predict and books it at the placing node — per
			// node, all three must end with the same accounts.
			closeTo := func(a, b float64) bool {
				return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))+1e-12
			}
			simTot := rec.inner.Ledger().Totals()
			if simTot.Predictions == 0 || simTot.Hits == 0 {
				t.Fatalf("ledger parity vacuous: sim totals %+v", simTot)
			}
			for i := range gwNodes {
				id := model.NodeID(i)
				simAcc := rec.inner.Ledger().Node(id)
				for name, acc := range map[string]audit.NodeAccount{
					"cluster": cluster.Ledger().Node(id),
					"gateway": gwNodes[i].Ledger().Node(id),
				} {
					if acc.Predictions != simAcc.Predictions || acc.Placements != simAcc.Placements ||
						acc.PlaceFailures != simAcc.PlaceFailures || acc.Hits != simAcc.Hits {
						t.Errorf("node %d: %s ledger counts %+v diverge from sim %+v", i, name, acc, simAcc)
					}
					if !closeTo(acc.PredictedGain, simAcc.PredictedGain) ||
						!closeTo(acc.RealizedSavings, simAcc.RealizedSavings) {
						t.Errorf("node %d: %s ledger sums (%g, %g) diverge from sim (%g, %g)", i, name,
							acc.PredictedGain, acc.RealizedSavings, simAcc.PredictedGain, simAcc.RealizedSavings)
					}
				}
			}
			t.Logf("%s: %d requests agreed across all three incarnations (%d cache hits, %d invariant checks, 0 violations, ledgers agree on %d predictions)",
				tc.name, gen.Len(), hits, checks, simTot.Predictions)
		})
	}
}

// TestPlacementHeaderSortedOnWire verifies the determinism fix end-to-end:
// on live traffic through a real chain, every X-Cascade-Place header lists
// node IDs in strictly ascending order (the encoding once depended on map
// iteration order, which made byte-level replay comparison impossible).
func TestPlacementHeaderSortedOnWire(t *testing.T) {
	const objSize = 500
	clk := &logicalClock{}
	base, _, _ := gatewayChain(t, []float64{1, 2, 4, 8}, 8*objSize, 64, objSize, clk.Now)
	client := &http.Client{}

	nonEmpty := 0
	for i := 0; i < 400; i++ {
		clk.Set(float64(i))
		resp, err := client.Get(fmt.Sprintf("%s/objects/%d", base, i%40))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		h := resp.Header.Get(httpgw.HeaderPlace)
		if h == "" {
			continue
		}
		nonEmpty++
		prev := -1
		for _, p := range strings.Split(h, ",") {
			id, err := strconv.Atoi(p)
			if err != nil {
				t.Fatalf("request %d: malformed placement header %q", i, h)
			}
			if id <= prev {
				t.Fatalf("request %d: placement header %q not strictly ascending", i, h)
			}
			prev = id
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no request produced a placement decision; workload too cold to be meaningful")
	}
}

// TestFramingEncodingsConform replays one trace through three gateway
// chains that differ only in wire encoding — all-textual, all-binary
// (pre-learned, so frames flow from the first request) and a mixed chain
// alternating textual-only and binary-capable hops — on both topologies.
// Every request must produce the same serving node and the same placement
// set on all three chains, proving the binary frame and the textual headers
// are byte-equivalent encodings of the protocol, and every auditor must
// stay clean.
func TestFramingEncodingsConform(t *testing.T) {
	cases := []struct {
		name   string
		upCost []float64
	}{
		{name: "hierarchy", upCost: []float64{1, 2, 4, 8}},
		{name: "enroute", upCost: []float64{1, 3, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const objSize = 1000
			gen := trace.NewGenerator(trace.Config{
				Objects:  200,
				Servers:  8,
				Clients:  20,
				Requests: 1500,
				Duration: 3600,
				MinSize:  objSize,
				MaxSize:  objSize,
				Seed:     43,
			})
			var reqs []model.Request
			for {
				req, ok := gen.Next()
				if !ok {
					break
				}
				reqs = append(reqs, req)
			}

			capacity := int64(10 * objSize)
			clk := &logicalClock{}
			type chain struct {
				name  string
				base  string
				nodes []*httpgw.Node
				o     *httpgw.Origin
			}
			build := func(name string, setup func([]*httpgw.Node, *httpgw.Origin)) chain {
				base, nodes, o := gatewayChain(t, tc.upCost, capacity, 64, objSize, clk.Now)
				setup(nodes, o)
				return chain{name: name, base: base, nodes: nodes, o: o}
			}
			chains := []chain{
				build("text", func(ns []*httpgw.Node, o *httpgw.Origin) {
					for _, n := range ns {
						n.DisableBinaryFraming = true
					}
					o.DisableBinaryFraming = true
				}),
				build("binary", func(ns []*httpgw.Node, o *httpgw.Origin) {
					for _, n := range ns {
						n.SetBinaryUpstream()
					}
				}),
				build("mixed", func(ns []*httpgw.Node, o *httpgw.Origin) {
					for i, n := range ns {
						if i%2 == 0 {
							n.DisableBinaryFraming = true
						}
					}
				}),
			}

			client := &http.Client{}
			for i, req := range reqs {
				clk.Set(req.Time)
				refServed, refPlaced := gatewayGet(t, client, chains[0].base, req.Object)
				sortNodes(refPlaced)
				for _, c := range chains[1:] {
					served, placed := gatewayGet(t, client, c.base, req.Object)
					sortNodes(placed)
					if served != refServed || !nodesEqual(placed, refPlaced) {
						t.Fatalf("request %d (obj %d): %s chain served=%d placed=%v, text chain served=%d placed=%v",
							i, req.Object, c.name, served, placed, refServed, refPlaced)
					}
				}
			}

			for _, c := range chains {
				if v := c.o.Auditor().TotalViolations(); v != 0 {
					t.Errorf("%s chain origin: %d invariant violations", c.name, v)
				}
				for i, n := range c.nodes {
					if v := n.Auditor().TotalViolations(); v != 0 {
						t.Errorf("%s chain node %d: %d invariant violations", c.name, i, v)
					}
				}
			}

			// The binary chain's interior must actually speak frames: an
			// advertising client gets a frame back from the front node.
			probe, err := http.NewRequest(http.MethodGet, chains[1].base+"/objects/0", nil)
			if err != nil {
				t.Fatal(err)
			}
			probe.Header.Set(httpgw.HeaderAccept, httpgw.FrameV1)
			resp, err := client.Do(probe)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.Header.Get(httpgw.HeaderFrame) == "" {
				t.Error("binary chain front node answered an advertising client without a frame")
			}
			// The textual chain must never emit frames or adverts.
			resp, err = client.Do(probe.Clone(context.Background()))
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
			probe2, err := http.NewRequest(http.MethodGet, chains[0].base+"/objects/0", nil)
			if err != nil {
				t.Fatal(err)
			}
			probe2.Header.Set(httpgw.HeaderAccept, httpgw.FrameV1)
			resp, err = client.Do(probe2)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.Header.Get(httpgw.HeaderFrame) != "" || resp.Header.Get(httpgw.HeaderAccept) != "" {
				t.Error("textual chain emitted binary framing headers")
			}
		})
	}
}

package conformance

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"

	"cascade/internal/model"
	"cascade/internal/runtime"
	"cascade/internal/scheme"
	"cascade/internal/sim"
	"cascade/internal/span"
	"cascade/internal/trace"
)

// protocolPhase reports whether a phase belongs to the protocol-tree
// conformance scope: the four phases every incarnation must emit
// identically for the same request. The data-plane phases (body, spill,
// promote) and coherency are transport-specific embellishments; the root
// request span anchors the tree but is compared via the "root" parent
// label rather than as a node of its own.
func protocolPhase(p span.Phase) bool {
	return p == span.PhaseLookup || p == span.PhaseUp || p == span.PhaseDecide || p == span.PhaseDown
}

// canonicalTree reduces one trace's span set to a transport-independent
// form: each protocol-phase span rendered as "phase@node/hop<-parent",
// where parent is the nearest protocol-phase ancestor ("root" when the
// chain tops out at the request span), the lines sorted and joined. Two
// incarnations emitted the same protocol tree for a request iff the
// canonical forms are equal.
func canonicalTree(spans []span.Span) (string, error) {
	byID := make(map[span.SpanID]span.Span, len(spans))
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			return "", fmt.Errorf("duplicate span id %s", s.ID)
		}
		byID[s.ID] = s
	}
	label := func(s span.Span) string {
		return fmt.Sprintf("%s@%d/%d", s.Phase, s.Node, s.Hop)
	}
	var parts []string
	for _, s := range spans {
		if !protocolPhase(s.Phase) {
			continue
		}
		if s.End < s.Start {
			return "", fmt.Errorf("span %s (%s) never closed", s.ID, label(s))
		}
		parent := "root"
		for pid := s.Parent; pid != 0; {
			p, ok := byID[pid]
			if !ok {
				return "", fmt.Errorf("span %s (%s): dangling parent %s", s.ID, label(s), pid)
			}
			if protocolPhase(p.Phase) {
				parent = label(p)
				break
			}
			pid = p.Parent
		}
		parts = append(parts, label(s)+"<-"+parent)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";"), nil
}

// gatherTraces merges per-node span snapshots into one map keyed by trace
// ID, failing the run if any ring overflowed (a dropped span would make
// the tree comparison vacuous).
func gatherTraces(t *testing.T, incarnation string, snaps []span.Snapshot) map[span.TraceID][]span.Span {
	t.Helper()
	traces := map[span.TraceID][]span.Span{}
	for _, snap := range snaps {
		if snap.Dropped != 0 {
			t.Fatalf("%s: node %d span ring dropped %d spans; raise the test's ring capacity",
				incarnation, snap.Node, snap.Dropped)
		}
		for _, s := range snap.Spans {
			traces[s.Trace] = append(traces[s.Trace], s)
		}
	}
	return traces
}

// canonicalForms validates every trace of one incarnation — exactly one
// root request span, all parent links resolving within the trace, all
// protocol spans closed — and returns the sorted canonical tree forms.
func canonicalForms(t *testing.T, incarnation string, traces map[span.TraceID][]span.Span) []string {
	t.Helper()
	forms := make([]string, 0, len(traces))
	for id, spans := range traces {
		roots := 0
		for _, s := range spans {
			if s.Trace != id {
				t.Fatalf("%s: trace %s holds a span of trace %s", incarnation, id, s.Trace)
			}
			if s.Phase == span.PhaseRequest {
				roots++
				if s.Parent != 0 {
					t.Fatalf("%s: trace %s root span has parent %s", incarnation, id, s.Parent)
				}
			}
		}
		if roots != 1 {
			t.Fatalf("%s: trace %s has %d request spans, want exactly 1", incarnation, id, roots)
		}
		form, err := canonicalTree(spans)
		if err != nil {
			t.Fatalf("%s: trace %s: %v", incarnation, id, err)
		}
		forms = append(forms, form)
	}
	sort.Strings(forms)
	return forms
}

// TestSpanTreesConform replays one trace through all three incarnations
// with span tracing at rate 1 and requires that every request produce the
// same protocol-phase span tree (lookup→up→decide→down per hop, identical
// nodes, hops and parent links) in the simulator scheme, the actor cluster
// and the live gateway chain — plus one unique trace ID per request and
// no dangling parents anywhere. Run under -race (make conformance): the
// cluster's actors and the gateway's HTTP handlers are concurrent even
// for a serial request stream.
//
// The origin's decide span is outside the comparison by construction on
// every incarnation: the gateway origin carries no tracer, and the
// simulator and cluster stamp origin-side decides with model.NoNode,
// which no per-node ring retains.
func TestSpanTreesConform(t *testing.T) {
	cases := []struct {
		name       string
		upCost     []float64
		originLink bool
		rel        float64
	}{
		{name: "hierarchy", upCost: []float64{1, 2, 4, 8}, originLink: true, rel: 0.02},
		{name: "enroute", upCost: []float64{1, 3, 0}, originLink: false, rel: 0.01},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const objSize = 1000 // uniform: all cost scalings collapse to 1
			const ringCap = 1 << 13
			gen := trace.NewGenerator(trace.Config{
				Objects:  150,
				Servers:  8,
				Clients:  20,
				Requests: 1200,
				Duration: 3600,
				MinSize:  objSize,
				MaxSize:  objSize,
				Seed:     47,
			})
			cat := gen.Catalog()
			avg := cat.AvgSize()
			net := newChainNet(tc.upCost, tc.originLink)
			capacity := int64(tc.rel * float64(cat.TotalBytes))
			dEntries := int(3 * float64(capacity) / avg)

			// Incarnation 1: the replay simulator, spans attached the way
			// `cascadesim -span-dump` attaches them.
			sch := scheme.NewCoordinated()
			sch.SetSpans(span.NewTracer(span.Policy{Rate: 1}), ringCap)
			simr, err := sim.New(sim.Config{
				Scheme: sch, Network: net, Catalog: cat,
				RelativeCacheSize: tc.rel, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Incarnation 2: the actor cluster.
			clk := &logicalClock{}
			cluster, err := runtime.NewCluster(runtime.Config{
				Network:       net,
				CacheBytes:    capacity,
				DCacheEntries: dEntries,
				AvgObjectSize: avg,
				Clock:         clk.Now,
				SpanCapacity:  ringCap,
				SpanSample:    1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()

			// Incarnation 3: the HTTP gateway chain, every hop tracing.
			base, gwNodes, _ := gatewayChain(t, tc.upCost, capacity, dEntries, objSize, clk.Now)
			for _, n := range gwNodes {
				n.EnableSpans(span.Policy{Rate: 1}, ringCap)
			}
			client := &http.Client{}

			ctx := context.Background()
			nreq := 0
			for {
				req, ok := gen.Next()
				if !ok {
					break
				}
				nreq++
				clk.Set(req.Time)
				simr.Process(req)
				if _, err := cluster.Get(ctx, 0, model.NoNode, req.Object, req.Size); err != nil {
					t.Fatal(err)
				}
				gatewayGet(t, client, base, req.Object)
			}

			// Harvest every node's ring per incarnation and stitch by
			// trace ID — exactly how an operator reassembles a
			// distributed trace from /cascade/debug/spans dumps.
			simSnaps := make([]span.Snapshot, 0, len(tc.upCost))
			clSnaps := make([]span.Snapshot, 0, len(tc.upCost))
			gwSnaps := make([]span.Snapshot, 0, len(tc.upCost))
			for i := range tc.upCost {
				id := model.NodeID(i)
				simSnaps = append(simSnaps, sch.SpanRing(id).TakeSnapshot(id))
				clSnaps = append(clSnaps, cluster.DumpSpans(id))
				gwSnaps = append(gwSnaps, gwNodes[i].DumpSpans())
			}
			incarnations := []struct {
				name   string
				traces map[span.TraceID][]span.Span
			}{
				{name: "sim", traces: gatherTraces(t, "sim", simSnaps)},
				{name: "cluster", traces: gatherTraces(t, "cluster", clSnaps)},
				{name: "gateway", traces: gatherTraces(t, "gateway", gwSnaps)},
			}

			// One unique trace per request: rate-1 tail sampling retains
			// every trace, and the map key is the 128-bit trace ID, so
			// cardinality == request count proves both minting-per-request
			// and uniqueness.
			for _, inc := range incarnations {
				if len(inc.traces) != nreq {
					t.Fatalf("%s: %d traces retained for %d requests", inc.name, len(inc.traces), nreq)
				}
			}

			ref := canonicalForms(t, "sim", incarnations[0].traces)
			decides, downs := 0, 0
			for _, form := range ref {
				decides += strings.Count(form, "decide@")
				downs += strings.Count(form, "down@")
			}
			if decides == 0 || downs == 0 {
				t.Fatalf("vacuous workload: %d cache-served decide spans, %d down spans", decides, downs)
			}
			freq := func(forms []string) map[string]int {
				m := map[string]int{}
				for _, f := range forms {
					m[f]++
				}
				return m
			}
			refFreq := freq(ref)
			for _, inc := range incarnations[1:] {
				forms := canonicalForms(t, inc.name, inc.traces)
				got := freq(forms)
				for form, n := range refFreq {
					if got[form] != n {
						t.Errorf("%s: tree %q: %d traces, sim has %d", inc.name, form, got[form], n)
					}
				}
				for form, n := range got {
					if _, ok := refFreq[form]; !ok {
						t.Errorf("%s: tree %q: %d traces, sim has none", inc.name, form, n)
					}
				}
			}
			if t.Failed() {
				t.FailNow()
			}
			t.Logf("%s: %d requests produced identical protocol span trees across all three incarnations (%d hit-served decides, %d down steps)",
				tc.name, nreq, decides, downs)
		})
	}
}

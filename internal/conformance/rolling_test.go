package conformance

import (
	"context"
	"net/http"
	"strconv"
	"testing"

	"cascade/internal/audit"
	"cascade/internal/controlplane"
	"cascade/internal/model"
	"cascade/internal/runtime"
	"cascade/internal/scheme"
	"cascade/internal/sim"
	"cascade/internal/trace"
)

// Parent gives the cluster a spill target on the linear cascade: each
// node's parent is the next cache toward the origin (model.NoNode for the
// top — its spill has nowhere to go, as on the other transports).
func (n *chainNet) Parent(id model.NodeID) model.NodeID {
	for i, c := range n.route.Caches {
		if c == id && i+1 < len(n.route.Caches) {
			return n.route.Caches[i+1]
		}
	}
	return model.NoNode
}

// TestDrainAdmitCycleConforms replays one trace through all three
// incarnations while a mid-chain node drains out and later rejoins. Every
// request — before, during and after the reconfiguration — must agree on
// the serving node and the placement set:
//
//   - the simulator ships an explicit "no descriptor" relay entry and skips
//     the node's DownStep,
//   - the cluster routes around the node and folds its link cost,
//   - the gateway node relays with a "-" path entry.
//
// Three different mechanisms, one wire meaning. The drain's spill must also
// land identically: the parent's d-cache learns the departing node's
// descriptors on every transport.
func TestDrainAdmitCycleConforms(t *testing.T) {
	const (
		objSize  = 1000
		drainAt  = 700  // request index of the drain
		admitAt  = 1500 // request index of the re-admission
		drainTgt = model.NodeID(1)
	)
	upCost := []float64{1, 2, 4, 8}
	gen := trace.NewGenerator(trace.Config{
		Objects:  250,
		Servers:  8,
		Clients:  30,
		Requests: 2400,
		Duration: 7200,
		MinSize:  objSize,
		MaxSize:  objSize,
		Seed:     43,
	})
	cat := gen.Catalog()
	net := newChainNet(upCost, true)
	route := net.Route(0, model.NoNode)

	const rel = 0.02
	capacity := int64(rel * float64(cat.TotalBytes))
	dEntries := int(3 * float64(capacity) / cat.AvgSize())
	const flightCap = 64

	rec := &recorder{inner: scheme.NewCoordinated()}
	rec.inner.SetAuditor(audit.New(nil))
	rec.inner.SetFlightCapacity(flightCap)
	simr, err := sim.New(sim.Config{
		Scheme: rec, Network: net, Catalog: cat,
		RelativeCacheSize: rel, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}

	clk := &logicalClock{}
	cluster, err := runtime.NewCluster(runtime.Config{
		Network:        net,
		CacheBytes:     capacity,
		DCacheEntries:  dEntries,
		AvgObjectSize:  cat.AvgSize(),
		Clock:          clk.Now,
		EnableAudit:    true,
		FlightCapacity: flightCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	base, gwNodes, gwOrigin := gatewayChain(t, upCost, capacity, dEntries, objSize, clk.Now)
	client := &http.Client{}

	// The gateway chain wires node i's server as node i-1's upstream; the
	// draining node's own URL is the upstream of the node below it.
	gwURL := func(id model.NodeID) string {
		if id == 0 {
			return base
		}
		return gwNodes[id-1].Upstream
	}
	gwAdmin := func(id model.NodeID, action string) *http.Response {
		resp, err := client.Post(gwURL(id)+"/cascade/admin/"+action, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	ctx := context.Background()
	hits, relayHits := 0, 0
	for i := 0; ; i++ {
		req, ok := gen.Next()
		if !ok {
			break
		}
		clk.Set(req.Time)

		switch i {
		case drainAt:
			// Drain the target on all three transports at the same logical
			// time. The simulator's spill is handed to the parent by the
			// caller; the cluster and the gateway ship it themselves.
			snaps := rec.inner.Drain(drainTgt, req.Time)
			if got := rec.inner.Absorb(net.Parent(drainTgt), snaps, req.Time); got < 0 {
				t.Fatal("simulator absorb failed")
			}
			if !cluster.Drain(ctx, drainTgt) {
				t.Fatal("cluster drain refused")
			}
			if resp := gwAdmin(drainTgt, "drain"); resp.StatusCode != http.StatusOK {
				t.Fatalf("gateway drain status %d", resp.StatusCode)
			}
			if got := cluster.ControlPlane().StateOf(drainTgt); got != controlplane.Removed {
				t.Fatalf("cluster membership after drain = %v", got)
			}
			if len(cluster.Failed()) != 0 {
				t.Fatal("a drained node must not count as failed")
			}
		case admitAt:
			if !rec.inner.Admit(drainTgt) {
				t.Fatal("simulator admit refused")
			}
			if !cluster.Admit(drainTgt) {
				t.Fatal("cluster admit refused")
			}
			if resp := gwAdmin(drainTgt, "admit"); resp.StatusCode != http.StatusOK {
				t.Fatalf("gateway admit status %d", resp.StatusCode)
			}
		}

		simr.Process(req)
		simOut := rec.last
		simServed := model.NoNode
		if simOut.HitIndex < len(route.Caches) {
			simServed = route.Caches[simOut.HitIndex]
			hits++
			if i >= drainAt && i < admitAt {
				relayHits++
			}
		}
		simPlaced := make([]model.NodeID, 0, len(simOut.Placed))
		for _, idx := range simOut.Placed {
			simPlaced = append(simPlaced, route.Caches[idx])
		}
		sortNodes(simPlaced)

		clRes, err := cluster.Get(ctx, 0, model.NoNode, req.Object, req.Size)
		if err != nil {
			t.Fatal(err)
		}
		clPlaced := sortNodes(append([]model.NodeID(nil), clRes.Placed...))

		gwServed, gwPlaced := gatewayGet(t, client, base, req.Object)
		sortNodes(gwPlaced)

		if clRes.ServedBy != simServed || gwServed != simServed {
			t.Fatalf("request %d (obj %d): served by sim=%d cluster=%d gateway=%d",
				i, req.Object, simServed, clRes.ServedBy, gwServed)
		}
		if !nodesEqual(clPlaced, simPlaced) || !nodesEqual(gwPlaced, simPlaced) {
			t.Fatalf("request %d (obj %d): placed sim=%v cluster=%v gateway=%v",
				i, req.Object, simPlaced, clPlaced, gwPlaced)
		}
		for _, p := range simPlaced {
			if p == drainTgt && i >= drainAt && i < admitAt {
				t.Fatalf("request %d: placement on the drained node", i)
			}
		}
	}
	if hits == 0 || relayHits == 0 {
		t.Fatalf("workload too cold to be meaningful: %d hits (%d while drained)", hits, relayHits)
	}

	// The spill reached the parent identically: every descriptor the
	// simulator's parent d-cache knows, the cluster's and the gateway's
	// know too (and vice versa, via the same Absorb semantics — spot-check
	// a sample of the object space).
	parent := net.Parent(drainTgt)
	agree := 0
	for obj := model.ObjectID(0); obj < 250; obj++ {
		want := rec.inner.DCache(parent).Contains(obj)
		if cluster.DCacheContains(parent, obj) != want {
			t.Fatalf("object %d: parent d-cache sim=%v cluster=%v", obj, want, !want)
		}
		if want {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("parent d-cache comparison vacuous")
	}

	// Clean audits everywhere, through two membership transitions.
	auditors := map[string]*audit.Auditor{
		"sim":            rec.inner.Auditor(),
		"cluster":        cluster.Auditor(),
		"gateway-origin": gwOrigin.Auditor(),
	}
	for i, n := range gwNodes {
		auditors["gateway"+strconv.Itoa(i)] = n.Auditor()
	}
	for name, a := range auditors {
		if v := a.TotalViolations(); v != 0 {
			t.Errorf("%s: %d invariant violations across the drain/admit cycle", name, v)
		}
	}

	// Membership landed back where it started on every transport.
	if got := cluster.ControlPlane().StateOf(drainTgt); got != controlplane.Active {
		t.Errorf("cluster membership after admit = %v", got)
	}
	if got := gwNodes[drainTgt].Member(); got != controlplane.Active {
		t.Errorf("gateway membership after admit = %v", got)
	}
	if rec.inner.Draining(drainTgt) {
		t.Error("simulator still draining after admit")
	}
	t.Logf("drain/admit cycle: %d requests agreed (%d hits, %d while drained), spill parity on %d descriptors",
		gen.Len(), hits, relayHits, agree)
}

package conformance

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"cascade/internal/audit"
	"cascade/internal/coherency"
	"cascade/internal/flightrec"
	"cascade/internal/httpgw"
	"cascade/internal/model"
	"cascade/internal/runtime"
	"cascade/internal/scheme"
	"cascade/internal/sim"
	"cascade/internal/trace"
)

// coherencyChain builds a gateway cascade like gatewayChain but with the
// engine-native coherency substrate attached: the origin owns a generation
// authority, every node runs a CAS-strict view. EnableCoherency is called
// before the httptest server starts accepting, honouring the set-before-
// serving contract. binary pre-learns frame negotiation on every hop so the
// chain speaks v2 frames from the first request; otherwise framing is
// disabled and everything travels as textual headers.
func coherencyChain(t *testing.T, upCost []float64, capacity int64, dEntries, objSize int, clock func() float64, binary bool) (string, []*httpgw.Node, *httpgw.Origin) {
	t.Helper()
	o := &httpgw.Origin{
		Size:      func(model.ObjectID) int { return objSize },
		Authority: coherency.NewAuthority(),
	}
	o.EnableObservability(64, clock)
	if !binary {
		o.DisableBinaryFraming = true
	}
	origin := httptest.NewServer(o)
	t.Cleanup(origin.Close)
	upstream := origin.URL
	nodes := make([]*httpgw.Node, len(upCost))
	for i := len(upCost) - 1; i >= 0; i-- {
		n := httpgw.NewNode(model.NodeID(i), upstream, upCost[i], capacity, dEntries, clock)
		n.EnableCoherency(coherency.ModeCAS)
		if binary {
			n.SetBinaryUpstream()
		} else {
			n.DisableBinaryFraming = true
		}
		srv := httptest.NewServer(n)
		t.Cleanup(srv.Close)
		upstream = srv.URL
		nodes[i] = n
	}
	return upstream, nodes, o
}

// gatewayReadCoh is gatewayGet plus the generation of the served copy (the
// response's X-Cascade-Gen; absent means generation zero, never written).
func gatewayReadCoh(t *testing.T, client *http.Client, base string, obj model.ObjectID) (model.NodeID, []model.NodeID, uint64) {
	t.Helper()
	resp, err := client.Get(base + "/objects/" + strconv.Itoa(int(obj)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("object %d: status %d", obj, resp.StatusCode)
	}
	served := model.NoNode
	if h := resp.Header.Get(httpgw.HeaderHit); h != "origin" {
		id, err := strconv.Atoi(h)
		if err != nil {
			t.Fatalf("object %d: bad %s header %q", obj, httpgw.HeaderHit, h)
		}
		served = model.NodeID(id)
	}
	var placed []model.NodeID
	for _, p := range strings.Split(resp.Header.Get(httpgw.HeaderPlace), ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		id, err := strconv.Atoi(p)
		if err != nil {
			t.Fatalf("object %d: bad %s header %q", obj, httpgw.HeaderPlace, resp.Header.Get(httpgw.HeaderPlace))
		}
		placed = append(placed, model.NodeID(id))
	}
	var gen uint64
	if h := resp.Header.Get(httpgw.HeaderGen); h != "" {
		if gen, err = strconv.ParseUint(h, 10, 64); err != nil {
			t.Fatalf("object %d: bad %s header %q", obj, httpgw.HeaderGen, h)
		}
	}
	return served, sortNodes(placed), gen
}

// gatewayWrite drives the origin-driven write path through the bottom of
// the chain: POST /cascade/admin/invalidate chains up to the origin (the
// sole generation authority) and every hop raises its floor and drops its
// stale copy on the unwind. Returns the object's new generation.
func gatewayWrite(t *testing.T, client *http.Client, base string, obj model.ObjectID) uint64 {
	t.Helper()
	resp, err := client.Post(fmt.Sprintf("%s/cascade/admin/invalidate?obj=%d", base, obj), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("invalidate obj %d: status %d: %s", obj, resp.StatusCode, body)
	}
	var rep struct {
		Obj int64  `json:"obj"`
		Gen uint64 `json:"gen"`
		Seq uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Obj != int64(obj) {
		t.Fatalf("invalidate reply for obj %d, wanted %d", rep.Obj, obj)
	}
	return rep.Gen
}

// TestCoherencyConformance replays one mixed read/write trace through all
// three incarnations — the replay simulator scheme, the actor cluster and
// two gateway chains (all-textual and all-binary framing) — in lockstep
// under CAS-strict coherency, on both cascade topologies. Each incarnation
// carries its own generation authority; because the write sequence is
// identical, the authorities march through identical (gen, seq) histories
// and every incarnation must agree, per request, on the serving node, the
// placement set and the generation of the served copy — and, per write, on
// the generation assigned. CAS-strict means never-serve-stale: every served
// generation must equal the authority's current generation at read time.
// After the run the per-node generation floors must be identical maps
// everywhere, every auditor must be silent, and every incarnation's flight
// recorder must have captured invalidation traffic.
func TestCoherencyConformance(t *testing.T) {
	cases := []struct {
		name       string
		upCost     []float64
		originLink bool
		rel        float64
	}{
		{name: "hierarchy", upCost: []float64{1, 2, 4, 8}, originLink: true, rel: 0.02},
		{name: "enroute", upCost: []float64{1, 3, 0}, originLink: false, rel: 0.01},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const objSize = 1000 // uniform: all cost scalings collapse to 1
			gen := trace.NewGenerator(trace.Config{
				Objects:  250,
				Servers:  8,
				Clients:  25,
				Requests: 2500,
				Duration: 7200,
				MinSize:  objSize,
				MaxSize:  objSize,
				Seed:     47,
			})
			cat := gen.Catalog()
			net := newChainNet(tc.upCost, tc.originLink)
			route := net.Route(0, model.NoNode)
			capacity := int64(tc.rel * float64(cat.TotalBytes))
			dEntries := int(3 * float64(capacity) / cat.AvgSize())
			const flightCap = 256

			// Incarnation 1: the replay simulator with an attached authority.
			rec := &recorder{inner: scheme.NewCoordinated()}
			rec.inner.SetAuditor(audit.New(nil))
			rec.inner.SetLedger(audit.NewLedger())
			rec.inner.SetFlightCapacity(flightCap)
			rec.inner.SetCoherency(coherency.NewAuthority(), coherency.ModeCAS, 0)
			simr, err := sim.New(sim.Config{
				Scheme: rec, Network: net, Catalog: cat,
				RelativeCacheSize: tc.rel, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Incarnation 2: the actor cluster under the same mode.
			clk := &logicalClock{}
			cluster, err := runtime.NewCluster(runtime.Config{
				Network:        net,
				CacheBytes:     capacity,
				DCacheEntries:  dEntries,
				AvgObjectSize:  cat.AvgSize(),
				Clock:          clk.Now,
				EnableAudit:    true,
				FlightCapacity: flightCap,
				CoherencyMode:  coherency.ModeCAS,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()

			// Incarnation 3a/3b: gateway chains, textual and binary wire.
			textBase, textNodes, textOrigin := coherencyChain(t, tc.upCost, capacity, dEntries, objSize, clk.Now, false)
			binBase, binNodes, binOrigin := coherencyChain(t, tc.upCost, capacity, dEntries, objSize, clk.Now, true)
			client := &http.Client{}

			ctx := context.Background()
			hits, writes, genServes := 0, 0, 0
			var recent []model.ObjectID
			for i := 0; ; i++ {
				req, ok := gen.Next()
				if !ok {
					break
				}
				clk.Set(req.Time)

				// Every 5th request is preceded by a write: the origin bumps
				// the generation of a recently-read (so likely cached) object
				// and pushes the invalidation down every incarnation's tree.
				if i%5 == 4 && len(recent) >= 3 {
					wobj := recent[len(recent)-3]
					simGen := rec.inner.Invalidate(wobj, req.Time)
					clGen := cluster.Invalidate(wobj)
					gwTextGen := gatewayWrite(t, client, textBase, wobj)
					gwBinGen := gatewayWrite(t, client, binBase, wobj)
					if clGen != simGen || gwTextGen != simGen || gwBinGen != simGen {
						t.Fatalf("write %d (obj %d): gen sim=%d cluster=%d text=%d binary=%d",
							i, wobj, simGen, clGen, gwTextGen, gwBinGen)
					}
					writes++
				}
				recent = append(recent, req.Object)
				if len(recent) > 8 {
					recent = recent[1:]
				}

				simr.Process(req)
				simOut := rec.last
				simServed := model.NoNode
				if simOut.HitIndex < len(route.Caches) {
					simServed = route.Caches[simOut.HitIndex]
					hits++
				}
				simPlaced := make([]model.NodeID, 0, len(simOut.Placed))
				for _, idx := range simOut.Placed {
					simPlaced = append(simPlaced, route.Caches[idx])
				}
				sortNodes(simPlaced)

				clRes, err := cluster.Get(ctx, 0, model.NoNode, req.Object, req.Size)
				if err != nil {
					t.Fatal(err)
				}
				clPlaced := sortNodes(append([]model.NodeID(nil), clRes.Placed...))

				txServed, txPlaced, txGen := gatewayReadCoh(t, client, textBase, req.Object)
				biServed, biPlaced, biGen := gatewayReadCoh(t, client, binBase, req.Object)

				if clRes.ServedBy != simServed || txServed != simServed || biServed != simServed {
					t.Fatalf("request %d (obj %d): served by sim=%d cluster=%d text=%d binary=%d",
						i, req.Object, simServed, clRes.ServedBy, txServed, biServed)
				}
				if !nodesEqual(clPlaced, simPlaced) || !nodesEqual(txPlaced, simPlaced) || !nodesEqual(biPlaced, simPlaced) {
					t.Fatalf("request %d (obj %d): placed sim=%v cluster=%v text=%v binary=%v",
						i, req.Object, simPlaced, clPlaced, txPlaced, biPlaced)
				}
				if clRes.ServedGen != simOut.ServedGen || txGen != simOut.ServedGen || biGen != simOut.ServedGen {
					t.Fatalf("request %d (obj %d): served gen sim=%d cluster=%d text=%d binary=%d",
						i, req.Object, simOut.ServedGen, clRes.ServedGen, txGen, biGen)
				}
				// CAS-strict: the served copy is never older than the
				// authority's current generation — zero stale serves.
				if cur := rec.inner.Authority().Gen(req.Object); simOut.ServedGen != cur {
					t.Fatalf("request %d (obj %d): CAS served gen %d, authority at %d",
						i, req.Object, simOut.ServedGen, cur)
				}
				if simOut.ServedGen > 0 {
					genServes++
				}
			}
			if hits == 0 || writes == 0 || genServes == 0 {
				t.Fatalf("degenerate workload: %d hits, %d writes, %d post-write serves", hits, writes, genServes)
			}

			// The generation floors — the invalidated set each node has
			// internalized — must be identical maps across incarnations.
			for i := range tc.upCost {
				id := model.NodeID(i)
				simFloors := rec.inner.CoherencyView(id).Floors()
				if len(simFloors) == 0 {
					t.Fatalf("node %d: simulator learned no floors despite %d writes", i, writes)
				}
				for name, floors := range map[string]map[model.ObjectID]uint64{
					"cluster": cluster.CoherencyView(id).Floors(),
					"text":    textNodes[i].CoherencyView().Floors(),
					"binary":  binNodes[i].CoherencyView().Floors(),
				} {
					if len(floors) != len(simFloors) {
						t.Fatalf("node %d: %s holds %d floors, sim %d", i, name, len(floors), len(simFloors))
					}
					for obj, g := range simFloors {
						if floors[obj] != g {
							t.Fatalf("node %d: %s floor for obj %d = %d, sim %d", i, name, obj, floors[obj], g)
						}
					}
				}
			}

			// Silence everywhere: a coherency-churned run is still a
			// conforming run.
			auditors := map[string]*audit.Auditor{
				"sim":           rec.inner.Auditor(),
				"cluster":       cluster.Auditor(),
				"text-origin":   textOrigin.Auditor(),
				"binary-origin": binOrigin.Auditor(),
			}
			for i := range textNodes {
				auditors[fmt.Sprintf("text%d", i)] = textNodes[i].Auditor()
				auditors[fmt.Sprintf("binary%d", i)] = binNodes[i].Auditor()
			}
			checks := int64(0)
			for name, a := range auditors {
				if v := a.TotalViolations(); v != 0 {
					t.Errorf("%s: %d invariant violations on a conforming run", name, v)
				}
				for _, iv := range audit.Invariants() {
					checks += a.Checks(iv)
				}
			}
			if checks == 0 {
				t.Fatal("auditors attached but no checks ran")
			}

			// Every incarnation's flight recorder must have captured the
			// invalidation traffic as first-class protocol events.
			sawInval := func(events []flightrec.Event) bool {
				for _, e := range events {
					if e.Kind == flightrec.KindInvalidate {
						return true
					}
				}
				return false
			}
			if !sawInval(rec.inner.FlightRecorder(0).Events()) {
				t.Error("simulator flight recorder has no invalidate events")
			}
			if !sawInval(cluster.DumpFlight(0).Events) {
				t.Error("cluster flight recorder has no invalidate events")
			}
			if !sawInval(textNodes[0].DumpFlight().Events) {
				t.Error("text gateway flight recorder has no invalidate events")
			}
			if !sawInval(binNodes[0].DumpFlight().Events) {
				t.Error("binary gateway flight recorder has no invalidate events")
			}
			t.Logf("%s: %d requests + %d writes agreed across four replicas (%d cache hits, %d reads at gen>0, %d invariant checks, 0 violations)",
				tc.name, gen.Len(), writes, hits, genServes, checks)
		})
	}
}

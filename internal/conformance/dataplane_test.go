// Data-plane conformance: the gateway chain must deliver byte-exact
// payloads under every protocol behaviour the descriptor plane exhibits —
// streamed relays, cache hits, revalidation, Range-segmented large objects
// and disk-spill round trips — on both reference topologies, with every
// auditor clean. Body integrity is proven by hashing: the origin's
// payloads are deterministic (store.SyntheticBody), so any truncation,
// reordering or corruption on any hop changes the hash.
package conformance

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"cascade/internal/httpgw"
	"cascade/internal/model"
	"cascade/internal/store"
)

// countedOrigin wraps an Origin and counts object fetches that reached it,
// split into whole-object requests and per-segment Range requests.
type countedOrigin struct {
	o       *httpgw.Origin
	plain   atomic.Int64
	segment atomic.Int64
}

func (c *countedOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/objects/") {
		if r.Header.Get(httpgw.HeaderSegment) != "" {
			c.segment.Add(1)
		} else {
			c.plain.Add(1)
		}
	}
	c.o.ServeHTTP(w, r)
}

// dataplaneChain is gatewayChain with a counting origin and per-object
// sizes (the segmentation tests need a mixed catalog).
func dataplaneChain(t *testing.T, upCost []float64, capacity int64, size func(model.ObjectID) int, clock func() float64, threshold, segSize int64) (string, []*httpgw.Node, *countedOrigin) {
	t.Helper()
	co := &countedOrigin{o: &httpgw.Origin{Size: size, SegmentThreshold: threshold, SegmentSize: segSize}}
	co.o.EnableObservability(64, clock)
	origin := httptest.NewServer(co)
	t.Cleanup(origin.Close)
	upstream := origin.URL
	nodes := make([]*httpgw.Node, len(upCost))
	for i := len(upCost) - 1; i >= 0; i-- {
		n := httpgw.NewNode(model.NodeID(i), upstream, upCost[i], capacity, 256, clock)
		srv := httptest.NewServer(n)
		t.Cleanup(srv.Close)
		upstream = srv.URL
		nodes[i] = n
	}
	return upstream, nodes, co
}

// dpGet fetches one object and returns the response (headers already
// consumed) plus the full body.
func dpGet(t *testing.T, client *http.Client, base string, obj model.ObjectID) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(base + "/objects/" + strconv.Itoa(int(obj)))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("object %d: status %d", obj, resp.StatusCode)
	}
	return resp, body
}

// assertAuditorsClean fails on any invariant violation anywhere in the
// chain, origin included.
func assertAuditorsClean(t *testing.T, nodes []*httpgw.Node, co *countedOrigin) {
	t.Helper()
	if v := co.o.Auditor().TotalViolations(); v != 0 {
		t.Errorf("origin: %d invariant violations", v)
	}
	for i, n := range nodes {
		if v := n.Auditor().TotalViolations(); v != 0 {
			t.Errorf("node %d: %d invariant violations", i, v)
		}
	}
}

// TestDataPlaneBodyIntegrity replays a mixed workload through both
// reference topologies and hashes every response body against the origin's
// deterministic payload. Capacity is tight enough that the replay
// exercises origin fetches, placements, relays and hits; whatever path the
// bytes took, the hash must match.
func TestDataPlaneBodyIntegrity(t *testing.T) {
	cases := []struct {
		name   string
		upCost []float64
	}{
		{name: "hierarchy", upCost: []float64{1, 2, 4, 8}},
		{name: "enroute", upCost: []float64{1, 3, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const (
				objects = 120
				objSize = 1000
			)
			clk := &logicalClock{}
			size := func(model.ObjectID) int { return objSize }
			base, nodes, co := dataplaneChain(t, tc.upCost, 12*objSize, size, clk.Now, 0, 0)
			client := &http.Client{}

			wantHash := make([]string, objects)
			for obj := 0; obj < objects; obj++ {
				wantHash[obj] = store.BodyHash(store.SyntheticBody(model.ObjectID(obj), objSize))
			}

			hitServed := 0
			for i := 0; i < 1500; i++ {
				clk.Set(float64(i))
				obj := model.ObjectID((i * 7) % objects)
				resp, body := dpGet(t, client, base, obj)
				if got := store.BodyHash(body); got != wantHash[obj] {
					t.Fatalf("request %d (obj %d): body hash %s, want %s (%d bytes)", i, obj, got, wantHash[obj], len(body))
				}
				if resp.ContentLength != objSize {
					t.Fatalf("request %d (obj %d): Content-Length %d", i, obj, resp.ContentLength)
				}
				if resp.Header.Get(httpgw.HeaderHit) != "origin" {
					hitServed++
				}
			}
			if hitServed == 0 {
				t.Fatal("no request was served by a cache; workload too cold to prove relay integrity")
			}
			assertAuditorsClean(t, nodes, co)
		})
	}
}

// TestDataPlaneSegmentedFetch proves large-object segmentation end to end
// on both topologies: an over-threshold object travels as three Range
// segments — each a first-class object identity with its own placement
// decision — and the client receives the byte-exact reassembly. Within a
// few fetches the segments must be served entirely from the caches (zero
// origin segment traffic), and the auditors must stay clean throughout.
func TestDataPlaneSegmentedFetch(t *testing.T) {
	cases := []struct {
		name   string
		upCost []float64
	}{
		{name: "hierarchy", upCost: []float64{1, 2, 4, 8}},
		{name: "enroute", upCost: []float64{1, 3, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const (
				smallSize = 800
				largeSize = 10000
				segSize   = 4096 // ceil(10000/4096) = 3 segments
				largeObj  = model.ObjectID(42)
				nsegs     = 3
			)
			clk := &logicalClock{}
			size := func(obj model.ObjectID) int {
				if obj == largeObj {
					return largeSize
				}
				return smallSize
			}
			base, nodes, co := dataplaneChain(t, tc.upCost, 1<<20, size, clk.Now, segSize, segSize)
			client := &http.Client{}
			want := store.SyntheticBody(largeObj, largeSize)

			// Cold fetch: exactly nsegs Range requests reach the origin.
			clk.Set(0)
			resp, body := dpGet(t, client, base, largeObj)
			if got := co.segment.Load(); got != nsegs {
				t.Fatalf("cold fetch used %d origin segment requests, want %d", got, nsegs)
			}
			if resp.Header.Get(httpgw.HeaderSegmented) != fmt.Sprintf("%d;%d", largeSize, segSize) {
				t.Fatalf("segmented marker %q", resp.Header.Get(httpgw.HeaderSegmented))
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("cold reassembly diverged (%d bytes, want %d)", len(body), len(want))
			}

			// Warm fetches: descriptors seed first, placements land after;
			// within four fetches no segment request may reach the origin.
			warm := false
			for attempt := 1; attempt <= 4 && !warm; attempt++ {
				clk.Set(float64(attempt * 10))
				before := co.segment.Load()
				_, body := dpGet(t, client, base, largeObj)
				if !bytes.Equal(body, want) {
					t.Fatalf("attempt %d: reassembly diverged", attempt)
				}
				warm = co.segment.Load() == before
			}
			if !warm {
				t.Fatal("segments never fully served from the caches")
			}

			// Each segment is its own object in some node's store.
			cached := 0
			for idx := 0; idx < nsegs; idx++ {
				sid := store.SegmentID(largeObj, idx)
				for _, n := range nodes {
					if n.Contains(sid) {
						cached++
						break
					}
				}
			}
			if cached == 0 {
				t.Fatal("no segment identity cached anywhere in the chain")
			}

			// Small objects keep traveling whole, byte-exact.
			clk.Set(100)
			resp, body = dpGet(t, client, base, 7)
			if resp.Header.Get(httpgw.HeaderSegmented) != "" {
				t.Fatal("under-threshold object was segmented")
			}
			if !bytes.Equal(body, store.SyntheticBody(7, smallSize)) {
				t.Fatal("small-object body diverged")
			}
			assertAuditorsClean(t, nodes, co)
		})
	}
}

// TestDataPlaneSpill drives a tight front cache with a disk spill tier:
// NCL evictions must land their payload on disk (byte-accounted in stats),
// and a re-request of a spilled object must be served by the front node
// from disk — zero origin traffic — with the payload intact and promoted
// back into the cache.
func TestDataPlaneSpill(t *testing.T) {
	const objSize = 1000
	clk := &logicalClock{}
	size := func(model.ObjectID) int { return objSize }
	base, nodes, co := dataplaneChain(t, []float64{1, 4}, 3*objSize, size, clk.Now, 0, 0)
	front := nodes[0]
	if err := front.EnableSpill(t.TempDir(), 0, 0); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}

	// Hot bursts: each object in turn earns a placement at the front node,
	// displacing (and spilling) an earlier one.
	for obj := model.ObjectID(0); obj < 8; obj++ {
		for k := 0; k < 5; k++ {
			clk.Set(float64(int(obj)*10 + k))
			dpGet(t, client, base, obj)
		}
	}
	bs := front.BodyStats()
	if bs.SpillBytesTotal == 0 {
		t.Fatalf("churn produced no spills: %+v", bs)
	}

	spilled := model.ObjectID(-1)
	for obj := model.ObjectID(0); obj < 8; obj++ {
		if front.SpillContains(obj) && !front.Contains(obj) {
			spilled = obj
			break
		}
	}
	if spilled < 0 {
		t.Fatalf("no object is disk-only after churn: %+v", bs)
	}

	plainBefore := co.plain.Load()
	clk.Set(200)
	resp, body := dpGet(t, client, base, spilled)
	if got := resp.Header.Get(httpgw.HeaderHit); got != "0" {
		t.Fatalf("spill re-request served by %q, want front node 0", got)
	}
	if co.plain.Load() != plainBefore {
		t.Fatal("spill re-request reached the origin")
	}
	if !bytes.Equal(body, store.SyntheticBody(spilled, objSize)) {
		t.Fatal("spilled payload corrupted")
	}
	if !front.Contains(spilled) {
		t.Fatal("spilled object not promoted back into the cache")
	}
	bs = front.BodyStats()
	if bs.DiskHits == 0 || bs.Promotions == 0 {
		t.Fatalf("disk hit not accounted: %+v", bs)
	}
	assertAuditorsClean(t, nodes, co)
}

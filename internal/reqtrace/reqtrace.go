// Package reqtrace captures hop-by-hop execution traces of the coordinated
// caching protocol for individual requests. A trace records both protocol
// passes of paper §2.3 — the request traveling up the cascade collecting
// piggybacked (f, m, l) descriptors, and the response traveling down
// carrying the DP placement decision and the miss-penalty counter with its
// resets at caching points.
//
// Tracing is opt-in and sampled: the instrumented scheme consults a
// Sampler before each request and pays a single nil/stride check when the
// request is not selected, keeping the simulator's hot path
// allocation-free. Selected requests buffer their events in memory;
// Traces() hands the batch to a JSON encoder (cascadesim -trace-requests)
// or a debugging test. docs/OBSERVABILITY.md documents the event schema.
package reqtrace

import "cascade/internal/model"

// Phases of the protocol a trace event belongs to.
const (
	PhaseUp     = "up"     // request traveling client → origin
	PhaseDecide = "decide" // DP placement decision at the serving node
	PhaseDown   = "down"   // response traveling origin → client
)

// Actions recorded by trace events.
const (
	ActMiss         = "miss"          // up: cache probed, object absent
	ActHit          = "hit"           // up: cache holds the object (serving node)
	ActServeOrigin  = "serve_origin"  // up: no cache hit, origin serves
	ActPiggyback    = "piggyback"     // up: node attaches its (f, m, l) descriptor
	ActNoDescriptor = "no_descriptor" // up: §2.4 tag — node has no descriptor, excluded
	ActExcluded     = "excluded"      // up: descriptor present but object cannot fit
	ActDecision     = "decision"      // decide: DP output, chosen hop indices
	ActPlace        = "place"         // down: node caches a copy, counter resets
	ActPlaceFailed  = "place_failed"  // down: instructed to cache but insert failed
	ActUpdate       = "update"        // down: node records the passing penalty counter
)

// Event is one protocol step of a traced request.
type Event struct {
	Phase string `json:"phase"`
	// Hop is the path index (0 = the client's first cache); -1 marks the
	// origin. Node is the cache's node ID, -1 for the origin.
	Hop    int    `json:"hop"`
	Node   int    `json:"node"`
	Action string `json:"action"`

	// Piggyback payload (ActPiggyback): the paper's (f, m, l) triple.
	Freq        float64 `json:"freq,omitempty"`
	CostLoss    float64 `json:"cost_loss,omitempty"`
	MissPenalty float64 `json:"miss_penalty,omitempty"`

	// Reset marks a downstream caching point where the miss-penalty
	// counter restarted from zero (MissPenalty holds the value the node
	// observed before the reset).
	Reset bool `json:"reset,omitempty"`

	// Chosen lists the DP-selected hop indices (ActDecision).
	Chosen []int `json:"chosen,omitempty"`

	// Evicted counts victims displaced by a placement (ActPlace).
	Evicted int `json:"evicted,omitempty"`
}

// Trace is the full record of one sampled request.
type Trace struct {
	Seq    int64          `json:"seq"` // request ordinal in the run (0-based)
	Time   float64        `json:"time"`
	Object model.ObjectID `json:"object"`
	Size   int64          `json:"size"`

	// HitIndex is the serving path index (== path length for the origin);
	// Placed lists the hop indices that took a copy.
	HitIndex int     `json:"hit_index"`
	Placed   []int   `json:"placed"`
	Events   []Event `json:"events"`
}

// Add appends an event.
func (t *Trace) Add(e Event) { t.Events = append(t.Events, e) }

// Sampler selects every stride-th request for tracing, up to a cap. The
// zero value samples nothing; methods on a nil Sampler are safe, so
// instrumented code needs only `if tr := s.Begin(...); tr != nil` guards.
type Sampler struct {
	stride int64
	max    int
	seen   int64
	traces []*Trace
}

// NewSampler traces every stride-th request (stride ≥ 1; 1 = every
// request) until max traces are captured.
func NewSampler(stride int64, max int) *Sampler {
	if stride < 1 {
		stride = 1
	}
	return &Sampler{stride: stride, max: max}
}

// Begin registers a request and returns its trace when selected, nil
// otherwise. Not safe for concurrent use — the simulator processes
// requests sequentially; concurrent runtimes must shard samplers.
func (s *Sampler) Begin(now float64, obj model.ObjectID, size int64) *Trace {
	if s == nil || len(s.traces) >= s.max {
		return nil
	}
	seq := s.seen
	s.seen++
	if seq%s.stride != 0 {
		return nil
	}
	tr := &Trace{Seq: seq, Time: now, Object: obj, Size: size}
	s.traces = append(s.traces, tr)
	return tr
}

// Traces returns the captured traces in request order.
func (s *Sampler) Traces() []*Trace {
	if s == nil {
		return nil
	}
	return s.traces
}

package metrics

import (
	"math"
	"testing"
)

func TestEmptyCollector(t *testing.T) {
	var c Collector
	if s := c.Summary(); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSingleSample(t *testing.T) {
	var c Collector
	c.Add(Sample{
		Latency:        2.0,
		Size:           2048,
		CacheHit:       true,
		Hops:           3,
		ReadBytes:      2048,
		WriteBytes:     4096,
		Inserts:        2,
		PiggybackBytes: 80,
	})
	s := c.Summary()
	if s.Requests != 1 || s.AvgLatency != 2.0 || s.HitRatio != 1 || s.ByteHitRatio != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.AvgRespRatio != 1.0 { // 2s / 2KB
		t.Fatalf("resp ratio = %v, want 1", s.AvgRespRatio)
	}
	if s.AvgByteHops != 2048*3 || s.AvgHops != 3 {
		t.Fatalf("traffic %v hops %v", s.AvgByteHops, s.AvgHops)
	}
	if s.AvgReadLoad != 2048 || s.AvgWriteLoad != 4096 || s.AvgLoad != 6144 {
		t.Fatalf("load %+v", s)
	}
	if s.AvgInserts != 2 || s.AvgPiggyback != 80 {
		t.Fatalf("inserts/piggyback %+v", s)
	}
}

func TestAveragesAndHitRatios(t *testing.T) {
	var c Collector
	c.Add(Sample{Latency: 1, Size: 1024, CacheHit: true, Hops: 1, ReadBytes: 1024})
	c.Add(Sample{Latency: 3, Size: 3072, CacheHit: false, Hops: 5, WriteBytes: 3072, Inserts: 1})
	s := c.Summary()
	if s.AvgLatency != 2 {
		t.Fatalf("avg latency %v", s.AvgLatency)
	}
	if s.HitRatio != 0.5 {
		t.Fatalf("hit ratio %v", s.HitRatio)
	}
	if want := 1024.0 / 4096.0; s.ByteHitRatio != want {
		t.Fatalf("byte hit ratio %v, want %v", s.ByteHitRatio, want)
	}
	if want := (1.0 + 1.0) / 2; math.Abs(s.AvgRespRatio-want) > 1e-12 {
		t.Fatalf("resp ratio %v, want %v", s.AvgRespRatio, want)
	}
	if want := (1024.0*1 + 3072.0*5) / 2; s.AvgByteHops != want {
		t.Fatalf("byte hops %v, want %v", s.AvgByteHops, want)
	}
}

func TestZeroSizeSampleSafe(t *testing.T) {
	var c Collector
	c.Add(Sample{Latency: 1, Size: 0})
	s := c.Summary()
	if math.IsNaN(s.AvgRespRatio) || math.IsInf(s.AvgRespRatio, 0) {
		t.Fatalf("resp ratio with zero size = %v", s.AvgRespRatio)
	}
}

func TestMergeEqualsSequential(t *testing.T) {
	mk := func(n int, seed int64) []Sample {
		out := make([]Sample, n)
		for i := range out {
			out[i] = Sample{
				Latency:    float64(i%7) * 0.1,
				Size:       int64(100 + (seed+int64(i))%900),
				CacheHit:   i%3 == 0,
				Hops:       i % 5,
				ReadBytes:  int64(i * 10),
				WriteBytes: int64(i * 20),
				Inserts:    i % 2,
			}
		}
		return out
	}
	a, b := mk(50, 1), mk(70, 2)
	var whole Collector
	for _, s := range append(append([]Sample{}, a...), b...) {
		whole.Add(s)
	}
	var ca, cb Collector
	for _, s := range a {
		ca.Add(s)
	}
	for _, s := range b {
		cb.Add(s)
	}
	ca.Merge(&cb)
	// Integer fields must match exactly; float sums only up to
	// associativity error.
	if ca.Requests != whole.Requests || ca.BytesRequested != whole.BytesRequested ||
		ca.CacheHits != whole.CacheHits || ca.CacheHitBytes != whole.CacheHitBytes ||
		ca.SumHops != whole.SumHops || ca.ReadBytes != whole.ReadBytes ||
		ca.WriteBytes != whole.WriteBytes || ca.Inserts != whole.Inserts {
		t.Fatalf("merged collector differs:\n%+v\n%+v", ca, whole)
	}
	for _, d := range []float64{
		ca.SumLatency - whole.SumLatency,
		ca.SumRespRatio - whole.SumRespRatio,
		ca.SumByteHops - whole.SumByteHops,
	} {
		if math.Abs(d) > 1e-9*math.Max(1, math.Abs(whole.SumRespRatio)) {
			t.Fatalf("merged float sums differ:\n%+v\n%+v", ca, whole)
		}
	}
}

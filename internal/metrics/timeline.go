package metrics

// Timeline buckets samples into fixed wall-clock windows, producing a
// time series of summaries. The paper reports steady-state averages only;
// the timeline exposes transient behaviour (warm-up, popularity shifts,
// flash crowds).
type Timeline struct {
	window  float64
	current Collector
	start   float64
	open    bool
	windows []Window
}

// Window is one completed aggregation interval.
type Window struct {
	Start   float64 // window start time (seconds)
	Summary Summary
}

// NewTimeline buckets samples into windows of the given length (seconds).
func NewTimeline(window float64) *Timeline {
	if window <= 0 {
		window = 600
	}
	return &Timeline{window: window}
}

// Add records a sample occurring at time now. Samples must arrive in
// non-decreasing time order.
func (t *Timeline) Add(now float64, s Sample) {
	if !t.open {
		t.start = now - mod(now, t.window)
		t.open = true
	}
	for now >= t.start+t.window {
		t.flush()
		t.start += t.window
	}
	t.current.Add(s)
}

func mod(x, m float64) float64 {
	n := x / m
	return x - float64(int64(n))*m
}

func (t *Timeline) flush() {
	t.windows = append(t.windows, Window{Start: t.start, Summary: t.current.Summary()})
	t.current = Collector{}
}

// Windows completes the open window and returns the series.
func (t *Timeline) Windows() []Window {
	if t.open && t.current.Requests > 0 {
		t.flush()
		t.current = Collector{}
	}
	return t.windows
}

package metrics

import "math"

// Histogram accumulates latencies in logarithmic buckets so that runs can
// report tail percentiles (the paper plots means only; tails are an
// extension this library adds). Buckets span 10µs to 10⁴ seconds with 20
// buckets per decade (≈12% relative resolution); values outside the range
// clamp into the edge buckets. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]int64
	count   int64
	zero    int64 // exact-zero values (e.g. hits at the first cache)
}

const (
	histMin          = 1e-5 // seconds
	histDecades      = 9
	histPerDecade    = 20
	histBuckets      = histDecades * histPerDecade
	histBucketFactor = histPerDecade / 1.0 // buckets per log10 unit
)

// bucketOf maps a positive value to its bucket index.
func bucketOf(v float64) int {
	idx := int(math.Floor(math.Log10(v/histMin) * histBucketFactor))
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketValue returns the geometric midpoint of a bucket.
func bucketValue(idx int) float64 {
	lo := histMin * math.Pow(10, float64(idx)/histPerDecade)
	hi := histMin * math.Pow(10, float64(idx+1)/histPerDecade)
	return math.Sqrt(lo * hi)
}

// Record adds one value. Negative values are clamped to zero.
func (h *Histogram) Record(v float64) {
	h.count++
	if v <= 0 {
		h.zero++
		return
	}
	h.buckets[bucketOf(v)]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Quantile returns an approximation of the q-quantile (0 < q ≤ 1), or 0
// when empty. Exact zeros sort before every bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		// q→0 must still land on a recorded value: without the clamp a
		// zero target would satisfy the cumulative test at the first
		// bucket even when that bucket is empty.
		target = 1
	}
	if target <= h.zero {
		return 0
	}
	cum := h.zero
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= target {
			return bucketValue(i)
		}
	}
	return bucketValue(histBuckets - 1)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	h.count += other.count
	h.zero += other.zero
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Zero returns the count of exact-zero (or negative, clamped) samples.
func (h *Histogram) Zero() int64 { return h.zero }

// Delta returns the distribution recorded between prev and h, both
// cumulative snapshots of the same histogram (h later). Windowed views —
// "the p99 of the last minute" — are deltas of cumulative scrapes; a
// negative cell (a reset between scrapes) clamps to zero.
func (h *Histogram) Delta(prev *Histogram) Histogram {
	var out Histogram
	pos := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	out.count = pos(h.count - prev.count)
	out.zero = pos(h.zero - prev.zero)
	for i := range h.buckets {
		out.buckets[i] = pos(h.buckets[i] - prev.buckets[i])
	}
	return out
}

// FractionAtOrBelow returns the fraction of recorded samples at or below v
// (1 on an empty histogram: nothing violates a bound nothing was measured
// against). Bucket resolution applies — a bound inside a bucket counts the
// whole bucket as below it.
func (h *Histogram) FractionAtOrBelow(v float64) float64 {
	if h.count == 0 {
		return 1
	}
	cum := h.zero
	if v > 0 {
		top := bucketOf(v)
		for i := 0; i <= top; i++ {
			cum += h.buckets[i]
		}
	}
	return float64(cum) / float64(h.count)
}

// BucketUpperBound returns the inclusive upper bound — the Prometheus
// "le" — of bucket idx. Every histogram in the system shares one bucket
// ladder, so bounds emitted by one node parse back into the same bucket on
// any other, which is what makes scraped distributions mergeable.
func BucketUpperBound(idx int) float64 {
	return histMin * math.Pow(10, float64(idx+1)/histPerDecade)
}

// ForEachBucket visits the non-empty buckets in ascending index order.
func (h *Histogram) ForEachBucket(fn func(idx int, count int64)) {
	for i, n := range h.buckets {
		if n != 0 {
			fn(i, n)
		}
	}
}

// AddLe books n samples into the bucket whose upper bound is le — the
// inverse of the _bucket exposition, used by federation to rebuild a
// mergeable distribution from scraped cumulative-bucket deltas. A bound at
// or below the histogram floor books the samples as exact zeros; an
// off-ladder bound lands in the nearest bucket.
func (h *Histogram) AddLe(le float64, n int64) {
	h.count += n
	if le <= histMin {
		h.zero += n
		return
	}
	idx := int(math.Round(math.Log10(le/histMin)*histBucketFactor)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx] += n
}

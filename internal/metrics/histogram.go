package metrics

import "math"

// Histogram accumulates latencies in logarithmic buckets so that runs can
// report tail percentiles (the paper plots means only; tails are an
// extension this library adds). Buckets span 10µs to 10⁴ seconds with 20
// buckets per decade (≈12% relative resolution); values outside the range
// clamp into the edge buckets. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]int64
	count   int64
	zero    int64 // exact-zero values (e.g. hits at the first cache)
}

const (
	histMin          = 1e-5 // seconds
	histDecades      = 9
	histPerDecade    = 20
	histBuckets      = histDecades * histPerDecade
	histBucketFactor = histPerDecade / 1.0 // buckets per log10 unit
)

// bucketOf maps a positive value to its bucket index.
func bucketOf(v float64) int {
	idx := int(math.Floor(math.Log10(v/histMin) * histBucketFactor))
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketValue returns the geometric midpoint of a bucket.
func bucketValue(idx int) float64 {
	lo := histMin * math.Pow(10, float64(idx)/histPerDecade)
	hi := histMin * math.Pow(10, float64(idx+1)/histPerDecade)
	return math.Sqrt(lo * hi)
}

// Record adds one value. Negative values are clamped to zero.
func (h *Histogram) Record(v float64) {
	h.count++
	if v <= 0 {
		h.zero++
		return
	}
	h.buckets[bucketOf(v)]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Quantile returns an approximation of the q-quantile (0 < q ≤ 1), or 0
// when empty. Exact zeros sort before every bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		// q→0 must still land on a recorded value: without the clamp a
		// zero target would satisfy the cumulative test at the first
		// bucket even when that bucket is empty.
		target = 1
	}
	if target <= h.zero {
		return 0
	}
	cum := h.zero
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= target {
			return bucketValue(i)
		}
	}
	return bucketValue(histBuckets - 1)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	h.count += other.count
	h.zero += other.zero
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

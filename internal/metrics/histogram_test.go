package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramZeros(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Record(0)
	}
	h.Record(1.0)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("median of mostly-zeros = %v, want 0", q)
	}
	if q := h.Quantile(1.0); q <= 0 {
		t.Fatalf("max quantile = %v, want positive", q)
	}
}

func TestHistogramResolution(t *testing.T) {
	// A single recorded value must be recovered within bucket resolution
	// (≈±6%).
	for _, v := range []float64{1e-4, 0.01, 0.5, 3, 100} {
		var h Histogram
		h.Record(v)
		got := h.Quantile(0.5)
		if math.Abs(got-v)/v > 0.07 {
			t.Fatalf("value %v recovered as %v (err %.1f%%)", v, got, 100*math.Abs(got-v)/v)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	var h Histogram
	h.Record(1e-9) // below range → lowest bucket
	h.Record(1e9)  // above range → highest bucket
	h.Record(-5)   // negative → zero
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(1.0); q < 1e3 {
		t.Fatalf("max quantile %v did not land in the top bucket", q)
	}
}

func TestHistogramQuantilesAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var h Histogram
	values := make([]float64, 20000)
	for i := range values {
		// Log-uniform over [1ms, 100s].
		values[i] = math.Exp(math.Log(0.001) + r.Float64()*math.Log(100000))
		h.Record(values[i])
	}
	sort.Float64s(values)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := values[int(q*float64(len(values)))-1]
		got := h.Quantile(q)
		if math.Abs(math.Log(got/exact)) > 0.15 { // within ~15% in log space
			t.Fatalf("q=%v: histogram %v vs exact %v", q, got, exact)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(r.ExpFloat64())
	}
	prev := 0.0
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantiles not monotone at q=%v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
	// Out-of-range q clamps.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping wrong")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := r.Float64() * 10
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		whole.Record(v)
	}
	a.Merge(&b)
	if a != whole {
		t.Fatal("merged histogram differs from whole")
	}
}

func TestSummaryPercentiles(t *testing.T) {
	var c Collector
	for i := 0; i < 99; i++ {
		c.Add(Sample{Latency: 0.1, Size: 1000})
	}
	c.Add(Sample{Latency: 10, Size: 1000})
	s := c.Summary()
	if s.P50Latency > 0.15 || s.P50Latency < 0.08 {
		t.Fatalf("P50 = %v, want ≈0.1", s.P50Latency)
	}
	if s.P99Latency < 0.08 {
		t.Fatalf("P99 = %v", s.P99Latency)
	}
	if q100 := c.Latencies.Quantile(1); q100 < 8 {
		t.Fatalf("max = %v, want ≈10", q100)
	}
}

func TestTimelineWindows(t *testing.T) {
	tl := NewTimeline(10)
	tl.Add(1, Sample{Latency: 1, Size: 100})
	tl.Add(5, Sample{Latency: 3, Size: 100})
	tl.Add(12, Sample{Latency: 5, Size: 100})
	tl.Add(35, Sample{Latency: 7, Size: 100})
	ws := tl.Windows()
	if len(ws) != 4 { // [0,10) [10,20) [20,30)-empty [30,40)
		t.Fatalf("windows = %d: %+v", len(ws), ws)
	}
	if ws[0].Summary.Requests != 2 || ws[0].Summary.AvgLatency != 2 {
		t.Fatalf("window 0: %+v", ws[0].Summary)
	}
	if ws[1].Summary.Requests != 1 || ws[1].Summary.AvgLatency != 5 {
		t.Fatalf("window 1: %+v", ws[1].Summary)
	}
	if ws[2].Summary.Requests != 0 {
		t.Fatalf("gap window not empty: %+v", ws[2].Summary)
	}
	if ws[3].Start != 30 || ws[3].Summary.AvgLatency != 7 {
		t.Fatalf("window 3: %+v", ws[3])
	}
	// Second call is stable.
	if len(tl.Windows()) != 4 {
		t.Fatal("Windows not idempotent")
	}
}

func TestTimelineDefaultWindow(t *testing.T) {
	tl := NewTimeline(0)
	if tl.window != 600 {
		t.Fatalf("default window = %v", tl.window)
	}
}

// Package metrics accumulates the per-request statistics the paper reports:
// average access latency, response ratio, byte hit ratio, network traffic in
// byte×hops, hops traveled, and aggregate cache read/write load (Figures
// 6–10), plus the piggyback overhead of coordinated caching (§2.3).
package metrics

// Sample is the accounting for one completed request.
type Sample struct {
	Latency        float64 // seconds
	Size           int64   // bytes
	CacheHit       bool    // served by some cache (not the origin)
	Hops           int     // links traversed up to the serving node
	ReadBytes      int64   // bytes read from caches (hit size)
	WriteBytes     int64   // bytes written into caches (inserted copies)
	Inserts        int     // number of copies inserted
	PiggybackBytes int64   // protocol meta-information carried

	// Consistency accounting (zero unless a coherency tracker is
	// configured).
	StaleHit bool // the hit served an out-of-date copy
	Refetch  bool // the policy forced a revalidation from the origin

	// Failure accounting (zero unless nodes fail during the run).
	Degraded    bool // served outside the protocol (origin-direct fallback)
	SkippedHops int  // dead caches routed around on this request's path
}

// Collector accumulates samples. The zero value is ready to use.
type Collector struct {
	Requests       int64
	BytesRequested int64
	SumLatency     float64
	SumRespRatio   float64
	// RespRatioCount counts the samples that contributed to SumRespRatio
	// (only Size > 0 requests have a defined latency-per-KB); dividing by
	// Requests instead would bias the average low on traces with
	// zero-size entries.
	RespRatioCount int64
	CacheHits      int64
	CacheHitBytes  int64
	SumByteHops    float64
	SumHops        int64
	ReadBytes      int64
	WriteBytes     int64
	Inserts        int64
	PiggybackBytes int64
	StaleHits      int64
	Refetches      int64
	DegradedCount  int64
	SkippedHops    int64

	// Latencies buckets every recorded latency for tail percentiles.
	Latencies Histogram
}

// Add records one request.
func (c *Collector) Add(s Sample) {
	c.Requests++
	c.BytesRequested += s.Size
	c.SumLatency += s.Latency
	c.Latencies.Record(s.Latency)
	if s.Size > 0 {
		// Response ratio normalized per kilobyte so the magnitudes
		// are readable (latency per KB of payload).
		c.SumRespRatio += s.Latency / (float64(s.Size) / 1024)
		c.RespRatioCount++
	}
	if s.CacheHit {
		c.CacheHits++
		c.CacheHitBytes += s.Size
	}
	c.SumByteHops += float64(s.Size) * float64(s.Hops)
	c.SumHops += int64(s.Hops)
	c.ReadBytes += s.ReadBytes
	c.WriteBytes += s.WriteBytes
	c.Inserts += int64(s.Inserts)
	c.PiggybackBytes += s.PiggybackBytes
	if s.StaleHit {
		c.StaleHits++
	}
	if s.Refetch {
		c.Refetches++
	}
	if s.Degraded {
		c.DegradedCount++
	}
	c.SkippedHops += int64(s.SkippedHops)
}

// Summary is the derived per-request averages a run reports.
type Summary struct {
	Requests     int64
	AvgSize      float64 // bytes requested per request
	AvgLatency   float64 // seconds per request
	AvgRespRatio float64 // seconds per KB of payload
	HitRatio     float64 // fraction of requests served by caches
	ByteHitRatio float64 // fraction of bytes served by caches
	AvgByteHops  float64 // bytes×hops per request (network traffic)
	AvgHops      float64 // links traversed per request
	AvgReadLoad  float64 // cache bytes read per request
	AvgWriteLoad float64 // cache bytes written per request
	AvgLoad      float64 // read + write
	AvgInserts   float64 // copies inserted per request
	AvgPiggyback float64 // protocol overhead bytes per request

	StaleHitRatio float64 // fraction of requests served a stale copy
	RefetchRatio  float64 // fraction of requests forced to revalidate

	DegradedRatio  float64 // fraction of requests served degraded
	AvgSkippedHops float64 // dead caches routed around per request

	// Latency tail percentiles (seconds), log-bucket approximations.
	P50Latency float64
	P95Latency float64
	P99Latency float64
}

// Summary derives the averages; it is safe on an empty collector.
func (c *Collector) Summary() Summary {
	if c.Requests == 0 {
		return Summary{}
	}
	n := float64(c.Requests)
	avgRespRatio := 0.0
	if c.RespRatioCount > 0 {
		avgRespRatio = c.SumRespRatio / float64(c.RespRatioCount)
	}
	byteHitRatio := 0.0
	if c.BytesRequested > 0 {
		byteHitRatio = float64(c.CacheHitBytes) / float64(c.BytesRequested)
	}
	return Summary{
		Requests:       c.Requests,
		AvgSize:        float64(c.BytesRequested) / n,
		AvgLatency:     c.SumLatency / n,
		AvgRespRatio:   avgRespRatio,
		HitRatio:       float64(c.CacheHits) / n,
		ByteHitRatio:   byteHitRatio,
		AvgByteHops:    c.SumByteHops / n,
		AvgHops:        float64(c.SumHops) / n,
		AvgReadLoad:    float64(c.ReadBytes) / n,
		AvgWriteLoad:   float64(c.WriteBytes) / n,
		AvgLoad:        float64(c.ReadBytes+c.WriteBytes) / n,
		AvgInserts:     float64(c.Inserts) / n,
		AvgPiggyback:   float64(c.PiggybackBytes) / n,
		StaleHitRatio:  float64(c.StaleHits) / n,
		RefetchRatio:   float64(c.Refetches) / n,
		DegradedRatio:  float64(c.DegradedCount) / n,
		AvgSkippedHops: float64(c.SkippedHops) / n,
		P50Latency:     c.Latencies.Quantile(0.50),
		P95Latency:     c.Latencies.Quantile(0.95),
		P99Latency:     c.Latencies.Quantile(0.99),
	}
}

// Merge folds other into c (for sharded or multi-run aggregation).
func (c *Collector) Merge(other *Collector) {
	c.Requests += other.Requests
	c.BytesRequested += other.BytesRequested
	c.SumLatency += other.SumLatency
	c.SumRespRatio += other.SumRespRatio
	c.RespRatioCount += other.RespRatioCount
	c.CacheHits += other.CacheHits
	c.CacheHitBytes += other.CacheHitBytes
	c.SumByteHops += other.SumByteHops
	c.SumHops += other.SumHops
	c.ReadBytes += other.ReadBytes
	c.WriteBytes += other.WriteBytes
	c.Inserts += other.Inserts
	c.PiggybackBytes += other.PiggybackBytes
	c.StaleHits += other.StaleHits
	c.Refetches += other.Refetches
	c.DegradedCount += other.DegradedCount
	c.SkippedHops += other.SkippedHops
	c.Latencies.Merge(&other.Latencies)
}

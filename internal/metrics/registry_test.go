package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cascade_requests_total", "Requests served.", L("node", "3"))
	c.Add(7)
	g := r.Gauge("cascade_inbox_depth", "Queued messages.", L("node", "3"))
	g.Set(2)
	r.GaugeFunc("cascade_up", "Node liveness.", func() float64 { return 1 }, L("node", "3"))
	s := r.Summary("cascade_pass_latency_seconds", "Per-pass latency.", L("pass", "up"))
	s.Record(0.01)
	s.Record(0.01)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cascade_requests_total counter",
		`cascade_requests_total{node="3"} 7`,
		"# TYPE cascade_inbox_depth gauge",
		`cascade_inbox_depth{node="3"} 2`,
		`cascade_up{node="3"} 1`,
		"# TYPE cascade_pass_latency_seconds summary",
		`cascade_pass_latency_seconds{pass="up",quantile="0.5"}`,
		`cascade_pass_latency_seconds_count{pass="up"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Families must carry exactly one TYPE line each.
	if strings.Count(out, "# TYPE cascade_requests_total") != 1 {
		t.Fatalf("duplicated TYPE line:\n%s", out)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("n", "1"))
	b := r.Counter("x_total", "", L("n", "1"))
	if a != b {
		t.Fatal("duplicate registration returned a different instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}
	other := r.Counter("x_total", "", L("n", "2"))
	if other == a {
		t.Fatal("distinct label sets must get distinct instruments")
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "", L("path", `a"b\c`+"\n"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\n"`) {
		t.Fatalf("label not escaped: %s", b.String())
	}
}

func TestAtomicHistogramConcurrent(t *testing.T) {
	var h AtomicHistogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(0.001 * float64(1+i%100))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("sum = %v", h.Sum())
	}
	q := h.Quantile(0.5)
	if q <= 0 || q > 0.2 {
		t.Fatalf("median = %v", q)
	}
}

func TestAtomicHistogramMatchesPlain(t *testing.T) {
	var a AtomicHistogram
	var p Histogram
	for i := 1; i <= 500; i++ {
		v := float64(i) * 0.003
		a.Record(v)
		p.Record(v)
	}
	snap := a.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.95, 1} {
		if snap.Quantile(q) != p.Quantile(q) {
			t.Fatalf("q=%v: atomic %v vs plain %v", q, snap.Quantile(q), p.Quantile(q))
		}
	}
}

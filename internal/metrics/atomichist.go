package metrics

import (
	"math"
	"sync/atomic"
)

// AtomicHistogram is the concurrency-safe sibling of Histogram: the same
// logarithmic buckets, every cell an atomic counter, so concurrent actors
// (runtime nodes, gateway handlers) can record without locks or
// allocation. Reads (Quantile, Snapshot) are wait-free but not atomic
// across buckets — a scrape racing a record may be off by the in-flight
// sample, which is the usual monitoring contract.
type AtomicHistogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	zero    atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running value sum
}

// Record adds one value. Negative values are clamped to zero.
func (h *AtomicHistogram) Record(v float64) {
	h.count.Add(1)
	if v > 0 {
		h.buckets[bucketOf(v)].Add(1)
		h.addSum(v)
		return
	}
	h.zero.Add(1)
}

func (h *AtomicHistogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, want) {
			return
		}
	}
}

// Count returns the number of recorded values.
func (h *AtomicHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *AtomicHistogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot copies the current state into a plain Histogram, on which the
// full quantile API is available without further synchronization.
func (h *AtomicHistogram) Snapshot() Histogram {
	var out Histogram
	out.zero = h.zero.Load()
	out.count = h.count.Load()
	var seen int64 = out.zero
	for i := range h.buckets {
		n := h.buckets[i].Load()
		out.buckets[i] = n
		seen += n
	}
	// A record in flight may have bumped count before its bucket: clamp
	// so Quantile's cumulative walk stays consistent.
	if out.count > seen {
		out.count = seen
	}
	return out
}

// Quantile returns an approximation of the q-quantile over the values
// recorded so far (0 when empty).
func (h *AtomicHistogram) Quantile(q float64) float64 {
	snap := h.Snapshot()
	return snap.Quantile(q)
}

package metrics

import "testing"

func TestTimelineWindowing(t *testing.T) {
	tl := NewTimeline(10)

	// First sample at t=12.5 opens the window aligned to its boundary, not
	// to the sample time.
	tl.Add(12.5, Sample{Latency: 1})
	tl.Add(19.9, Sample{Latency: 1})
	tl.Add(20.0, Sample{Latency: 3}) // exactly on the boundary: next window
	tl.Add(25.0, Sample{Latency: 3})

	ws := tl.Windows()
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(ws), ws)
	}
	if ws[0].Start != 10 || ws[1].Start != 20 {
		t.Fatalf("window starts %v/%v, want 10/20", ws[0].Start, ws[1].Start)
	}
	if ws[0].Summary.Requests != 2 || ws[1].Summary.Requests != 2 {
		t.Fatalf("window requests %d/%d, want 2/2", ws[0].Summary.Requests, ws[1].Summary.Requests)
	}
	if ws[0].Summary.AvgLatency != 1 || ws[1].Summary.AvgLatency != 3 {
		t.Fatalf("window latencies %v/%v, want 1/3", ws[0].Summary.AvgLatency, ws[1].Summary.AvgLatency)
	}
}

func TestTimelineGapsProduceEmptyWindows(t *testing.T) {
	tl := NewTimeline(10)
	tl.Add(0, Sample{})
	tl.Add(35, Sample{}) // three boundaries crossed: 10, 20, 30

	ws := tl.Windows()
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4 (two idle): %+v", len(ws), ws)
	}
	for i, want := range []float64{0, 10, 20, 30} {
		if ws[i].Start != want {
			t.Fatalf("window %d starts at %v, want %v", i, ws[i].Start, want)
		}
	}
	if ws[1].Summary.Requests != 0 || ws[2].Summary.Requests != 0 {
		t.Fatal("idle windows should report zero requests")
	}
}

func TestTimelineWindowsIdempotent(t *testing.T) {
	tl := NewTimeline(10)
	tl.Add(5, Sample{})
	if n := len(tl.Windows()); n != 1 {
		t.Fatalf("first Windows call: %d windows, want 1", n)
	}
	// Calling again must not duplicate the flushed open window.
	if n := len(tl.Windows()); n != 1 {
		t.Fatalf("second Windows call: %d windows, want 1", n)
	}
}

func TestTimelineDefaultsAndEmpty(t *testing.T) {
	if tl := NewTimeline(0); tl.window != 600 {
		t.Fatalf("zero window defaulted to %v, want 600", tl.window)
	}
	if tl := NewTimeline(-5); tl.window != 600 {
		t.Fatalf("negative window defaulted to %v, want 600", tl.window)
	}
	if ws := NewTimeline(10).Windows(); ws != nil {
		t.Fatalf("empty timeline returned windows: %+v", ws)
	}
}

func TestTimelineNonAlignedStart(t *testing.T) {
	// A window length that does not divide the first timestamp still aligns
	// windows on multiples of the length.
	tl := NewTimeline(7)
	tl.Add(16, Sample{}) // floor(16/7)*7 = 14
	tl.Add(21, Sample{}) // next window starts at 21
	ws := tl.Windows()
	if len(ws) != 2 || ws[0].Start != 14 || ws[1].Start != 21 {
		t.Fatalf("windows %+v, want starts 14 and 21", ws)
	}
}

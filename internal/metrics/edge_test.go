package metrics

import (
	"math"
	"testing"
)

// TestZeroByteTraceNoNaN is the ByteHitRatio regression guard: a trace
// whose requests are all zero-byte must not emit NaN into reports.
func TestZeroByteTraceNoNaN(t *testing.T) {
	var c Collector
	c.Add(Sample{Latency: 0.5, Size: 0, CacheHit: true})
	c.Add(Sample{Latency: 0.2, Size: 0})
	s := c.Summary()
	if math.IsNaN(s.ByteHitRatio) || s.ByteHitRatio != 0 {
		t.Fatalf("byte hit ratio on zero-byte trace = %v, want 0", s.ByteHitRatio)
	}
	if math.IsNaN(s.AvgRespRatio) || s.AvgRespRatio != 0 {
		t.Fatalf("resp ratio on zero-byte trace = %v, want 0", s.AvgRespRatio)
	}
}

// TestRespRatioDenominator pins the fix for the denominator mismatch:
// zero-size samples contribute no response ratio and must not dilute the
// average of the samples that do.
func TestRespRatioDenominator(t *testing.T) {
	var c Collector
	c.Add(Sample{Latency: 2, Size: 2048}) // 1 s/KB
	c.Add(Sample{Latency: 4, Size: 2048}) // 2 s/KB
	c.Add(Sample{Latency: 9, Size: 0})    // undefined: excluded
	s := c.Summary()
	if want := 1.5; math.Abs(s.AvgRespRatio-want) > 1e-12 {
		t.Fatalf("resp ratio = %v, want %v (zero-size sample must not dilute)", s.AvgRespRatio, want)
	}
}

// TestMergeThenSummaryEquivalence checks that merging shards and then
// summarizing equals summarizing the whole stream, including the
// ratio-style fields that depend on auxiliary counts.
func TestMergeThenSummaryEquivalence(t *testing.T) {
	mk := func(i int) Sample {
		s := Sample{Latency: 0.01 * float64(1+i%13), Size: int64((i % 4) * 512)}
		s.CacheHit = i%3 == 0
		if s.CacheHit {
			s.ReadBytes = s.Size
		}
		return s
	}
	var whole, a, b Collector
	for i := 0; i < 400; i++ {
		s := mk(i)
		whole.Add(s)
		if i%2 == 0 {
			a.Add(s)
		} else {
			b.Add(s)
		}
	}
	a.Merge(&b)
	sa, sw := a.Summary(), whole.Summary()
	close := func(x, y float64) bool { return math.Abs(x-y) <= 1e-9*math.Max(1, math.Abs(y)) }
	if !close(sa.AvgRespRatio, sw.AvgRespRatio) || !close(sa.ByteHitRatio, sw.ByteHitRatio) ||
		!close(sa.AvgLatency, sw.AvgLatency) || sa.Requests != sw.Requests {
		t.Fatalf("merged summary differs:\n%+v\n%+v", sa, sw)
	}
	if sa.P95Latency != sw.P95Latency {
		t.Fatalf("merged P95 %v vs %v", sa.P95Latency, sw.P95Latency)
	}
}

// TestQuantileBoundaries exercises q∈{0,1} with and without zero-valued
// samples. q→0 with no zeros must land on the smallest recorded value's
// bucket, never on an empty first bucket.
func TestQuantileBoundaries(t *testing.T) {
	var h Histogram
	h.Record(0.5)
	h.Record(2.0)
	q0 := h.Quantile(0)
	if math.Abs(q0-0.5)/0.5 > 0.07 {
		t.Fatalf("q=0 with no zero samples = %v, want ≈0.5 (min recorded)", q0)
	}
	q1 := h.Quantile(1)
	if math.Abs(q1-2.0)/2.0 > 0.07 {
		t.Fatalf("q=1 = %v, want ≈2.0", q1)
	}

	var hz Histogram
	hz.Record(0)
	hz.Record(1)
	if got := hz.Quantile(0); got != 0 {
		t.Fatalf("q=0 with zero samples = %v, want 0", got)
	}
	if got := hz.Quantile(0.5); got != 0 {
		t.Fatalf("q=0.5 (half zeros) = %v, want 0", got)
	}
	if got := hz.Quantile(1); got <= 0 {
		t.Fatalf("q=1 = %v, want positive", got)
	}
}

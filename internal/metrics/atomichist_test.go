package metrics

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAtomicHistogramMatchesPlain drives identical value streams through
// the atomic and plain histograms: every quantile must agree exactly,
// since they share one bucket ladder.
func TestAtomicHistogramMatchesPlainRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ah AtomicHistogram
	var ph Histogram
	sum := 0.0
	for i := 0; i < 10_000; i++ {
		v := math.Pow(10, rng.Float64()*6-5) // 1e-5 .. 10 seconds
		if i%100 == 0 {
			v = 0 // exact-zero lane
		}
		ah.Record(v)
		ph.Record(v)
		sum += v
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.95, 0.99, 1} {
		if got, want := ah.Quantile(q), ph.Quantile(q); got != want {
			t.Fatalf("q%v: atomic %v, plain %v", q, got, want)
		}
	}
	if ah.Count() != ph.Count() {
		t.Fatalf("count %d vs %d", ah.Count(), ph.Count())
	}
	if math.Abs(ah.Sum()-sum) > 1e-9*sum {
		t.Fatalf("sum %v, want %v", ah.Sum(), sum)
	}
}

// TestAtomicHistogramRecordVsSnapshot runs recorders against a concurrent
// snapshotter; under -race this is the data-race check, and afterwards the
// totals must be exact. Every snapshot observed along the way must satisfy
// the clamp invariant (count never exceeds the sum of bucket+zero cells).
func TestAtomicHistogramRecordVsSnapshot(t *testing.T) {
	const writers, perWriter = 8, 5_000
	var h AtomicHistogram
	stop := make(chan struct{})

	var clampBroken atomic.Bool
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			seen := snap.Zero()
			snap.ForEachBucket(func(_ int, n int64) { seen += n })
			if snap.Count() > seen {
				clampBroken.Store(true)
				return
			}
			_ = snap.Quantile(0.99)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Record(rng.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if clampBroken.Load() {
		t.Fatal("snapshot count exceeded the sum of its cells")
	}
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count %d, want %d", got, writers*perWriter)
	}
}

// TestHistogramMergeEquivalence is the property federation relies on:
// recording a stream split across N histograms and merging equals
// recording the whole stream into one — bucket for bucket, quantile for
// quantile.
func TestHistogramMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	parts := make([]Histogram, 4)
	var whole Histogram
	for i := 0; i < 20_000; i++ {
		v := math.Pow(10, rng.Float64()*8-5)
		if i%50 == 0 {
			v = 0
		}
		parts[i%len(parts)].Record(v)
		whole.Record(v)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merged histogram differs from the whole-stream histogram")
	}
}

// TestHistogramAddLeRoundTrip rebuilds a histogram from its own _bucket
// exposition (cumulative counts at non-empty upper bounds) and checks the
// reconstruction is exact — the scrape-side half of federation.
func TestHistogramAddLeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var orig Histogram
	for i := 0; i < 5_000; i++ {
		v := math.Pow(10, rng.Float64()*8-5)
		if i%25 == 0 {
			v = 0
		}
		orig.Record(v)
	}

	// Re-derive (le, delta) pairs exactly as the exposition writes them.
	type pair struct {
		le  float64
		cum int64
	}
	var pairs []pair
	cum := orig.Zero()
	if cum > 0 {
		pairs = append(pairs, pair{1e-5, cum})
	}
	orig.ForEachBucket(func(idx int, n int64) {
		cum += n
		pairs = append(pairs, pair{BucketUpperBound(idx), cum})
	})

	var rebuilt Histogram
	prev := int64(0)
	for _, p := range pairs {
		rebuilt.AddLe(p.le, p.cum-prev)
		prev = p.cum
	}
	if rebuilt != orig {
		t.Fatal("histogram rebuilt from its bucket exposition differs from the original")
	}
}

// TestSummaryBucketExposition scrapes a registry summary and checks the
// histogram lines: cumulative, monotone, ending at le="+Inf" == _count,
// alongside the legacy quantile lines.
func TestSummaryBucketExposition(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("demo_seconds", "demo", L("node", "3"))
	for _, v := range []float64{0, 0.001, 0.001, 0.25, 3} {
		s.Record(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	var lastCum int64 = -1
	var infCum, count int64 = -1, -1
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "demo_seconds_bucket{"):
			buckets++
			if !strings.Contains(line, `node="3"`) {
				t.Fatalf("bucket line lost its labels: %s", line)
			}
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if v < lastCum {
				t.Fatalf("bucket counts not cumulative: %s after %d", line, lastCum)
			}
			lastCum = v
			if strings.Contains(line, `le="+Inf"`) {
				infCum = v
			}
		case strings.HasPrefix(line, "demo_seconds_count{"):
			count, _ = strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		}
	}
	// zero lane + three distinct value buckets + +Inf
	if buckets != 5 {
		t.Fatalf("got %d bucket lines, want 5:\n%s", buckets, out)
	}
	if infCum != 5 || count != 5 {
		t.Fatalf("le=+Inf %d / _count %d, want 5/5:\n%s", infCum, count, out)
	}
	if !strings.Contains(out, `demo_seconds{node="3",quantile="0.99"}`) {
		t.Fatalf("legacy quantile line missing:\n%s", out)
	}
}

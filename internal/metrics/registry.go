package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the operational half of the package: a lightweight metrics
// registry in the Prometheus exposition model. Instruments (counters,
// gauges, summaries) are plain atomic cells handed out once at component
// construction, so the hot path pays one atomic op per update — no map
// lookups, no locks, no allocation. The Registry is consulted only at
// scrape time, when it renders every registered series in the Prometheus
// text format (version 0.0.4, the format every Prometheus-compatible
// scraper accepts).

// Counter is a monotonically increasing value. The zero value is usable,
// but instruments are normally obtained from Registry.Counter so they are
// exported.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be ≥ 0 for the Prometheus
// contract; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Label is one name="value" pair attached to a series.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is one exported time series: a pre-rendered label set plus a
// closure emitting its sample lines at scrape time.
type series struct {
	labels string // rendered `k1="v1",k2="v2"` (no braces), may be ""
	write  func(w io.Writer, name, labels string)
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	series          []series
	byLabels        map[string]int // labels → series index (idempotent re-registration)
}

// Registry holds registered instruments and renders them in the
// Prometheus text format. The zero value is not usable; call NewRegistry.
// Registration and scraping are safe for concurrent use; instrument
// updates never touch the registry.
type Registry struct {
	mu          sync.Mutex
	families    map[string]*family
	order       []string
	instruments map[instrumentKey]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the text-format escapes (backslash, quote,
// newline).
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// register binds a series into its family, creating the family on first
// use. It returns the previously registered series index when the exact
// (name, labels) pair exists, so duplicate registration is idempotent.
func (r *Registry) register(name, help, typ, labels string, write func(io.Writer, string, string)) (existing int, fresh bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]int)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if i, dup := f.byLabels[labels]; dup {
		return i, false
	}
	f.byLabels[labels] = len(f.series)
	f.series = append(f.series, series{labels: labels, write: write})
	return len(f.series) - 1, true
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	ls := renderLabels(labels)
	if i, fresh := r.register(name, help, "counter", ls, func(w io.Writer, n, l string) {
		writeSample(w, n, l, strconv.FormatInt(c.Value(), 10))
	}); !fresh {
		// Re-registration: rebind to the live instrument by re-reading
		// the stored closure's counter. Simplest correct behaviour: keep
		// one instrument per (name, labels) pair.
		return r.counterAt(name, i)
	}
	r.noteInstrument(name, ls, c)
	return c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	ls := renderLabels(labels)
	if i, fresh := r.register(name, help, "gauge", ls, func(w io.Writer, n, l string) {
		writeSample(w, n, l, strconv.FormatInt(g.Value(), 10))
	}); !fresh {
		return r.gaugeAt(name, i)
	}
	r.noteInstrument(name, ls, g)
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for quantities the owner already tracks (queue depths, breaker state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", renderLabels(labels), func(w io.Writer, n, l string) {
		writeSample(w, n, l, formatFloat(fn()))
	})
}

// CounterFunc registers a counter whose value is read at scrape time — for
// monotonic counts a component already maintains under its own lock, where
// swapping in a Counter cell would double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "counter", renderLabels(labels), func(w io.Writer, n, l string) {
		writeSample(w, n, l, formatFloat(fn()))
	})
}

// Summary registers an atomic histogram exported as a Prometheus summary
// (quantiles 0.5/0.95/0.99) plus cumulative histogram buckets
// (_bucket{le="..."}), _sum, and _count. The quantile lines keep existing
// dashboards working; the bucket lines are what federation consumes —
// quantiles cannot be merged across nodes, bucket counts can. Only change
// points (non-empty buckets) are emitted, plus the mandatory le="+Inf";
// absent bounds carry the previous cumulative value, which Histogram.AddLe
// reconstructs exactly because every node shares one bucket ladder.
func (r *Registry) Summary(name, help string, labels ...Label) *AtomicHistogram {
	h := &AtomicHistogram{}
	ls := renderLabels(labels)
	if i, fresh := r.register(name, help, "summary", ls, func(w io.Writer, n, l string) {
		snap := h.Snapshot()
		for _, q := range [...]float64{0.5, 0.95, 0.99} {
			ql := `quantile="` + formatFloat(q) + `"`
			if l != "" {
				ql = l + "," + ql
			}
			writeSample(w, n, ql, formatFloat(snap.Quantile(q)))
		}
		bucket := func(le string, cum int64) {
			bl := `le="` + le + `"`
			if l != "" {
				bl = l + "," + bl
			}
			writeSample(w, n+"_bucket", bl, strconv.FormatInt(cum, 10))
		}
		cum := snap.Zero()
		if cum > 0 {
			// Exact zeros sort below every bucket: expose them at the
			// histogram floor so federation preserves the split.
			bucket(formatFloat(histMin), cum)
		}
		snap.ForEachBucket(func(idx int, count int64) {
			cum += count
			bucket(formatFloat(BucketUpperBound(idx)), cum)
		})
		bucket("+Inf", snap.Count())
		writeSample(w, n+"_sum", l, formatFloat(h.Sum()))
		writeSample(w, n+"_count", l, strconv.FormatInt(snap.Count(), 10))
	}); !fresh {
		return r.summaryAt(name, i)
	}
	r.noteInstrument(name, ls, h)
	return h
}

// instruments maps (family, series index) back to the live instrument so
// duplicate registrations return the original instead of a dead twin.
type instrumentKey struct {
	name   string
	labels string
}

func (r *Registry) noteInstrument(name, labels string, inst any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.instruments == nil {
		r.instruments = make(map[instrumentKey]any)
	}
	r.instruments[instrumentKey{name, labels}] = inst
}

func (r *Registry) instrumentAt(name string, idx int) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil || idx >= len(f.series) {
		return nil
	}
	return r.instruments[instrumentKey{name, f.series[idx].labels}]
}

func (r *Registry) counterAt(name string, idx int) *Counter {
	if c, ok := r.instrumentAt(name, idx).(*Counter); ok {
		return c
	}
	return &Counter{} // type mismatch: hand back a detached cell
}

func (r *Registry) gaugeAt(name string, idx int) *Gauge {
	if g, ok := r.instrumentAt(name, idx).(*Gauge); ok {
		return g
	}
	return &Gauge{}
}

func (r *Registry) summaryAt(name string, idx int) *AtomicHistogram {
	if h, ok := r.instrumentAt(name, idx).(*AtomicHistogram); ok {
		return h
	}
	return &AtomicHistogram{}
}

func writeSample(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format. Families appear in sorted name order, series in
// registration order, so output is deterministic and diff-friendly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	bw := &errWriter{w: w}
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		ss := append([]series(nil), f.series...)
		help, typ := f.help, f.typ
		r.mu.Unlock()
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		for _, s := range ss {
			s.write(bw, name, s.labels)
		}
	}
	return bw.err
}

// errWriter latches the first write error so collectors need no error
// plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

// Package coherency is the engine-native consistency substrate of the
// cascade. The paper assumes cached copies are fresh ("objects stored in
// the caches are up-to-date … by using a cache coherency protocol [9] if
// necessary", §2, citing Krishnamurthy & Wills' piggyback server
// invalidation). This package makes that assumption a protocol concern
// instead of a simulator sidecar:
//
//   - every object carries a monotonically increasing **generation**,
//     owned by the origin-side Authority and bumped on each write;
//   - cached copies record the generation they were fetched at
//     (cache.Descriptor.Gen, persisted in the disk tier's CBS1 records);
//   - each cache node keeps a NodeView: per-object generation floors (the
//     oldest generation it may still serve) plus a cursor into the
//     authority's invalidation log;
//   - origin-served responses piggyback the log tail PSI-style; explicit
//     writes push the same entries down the distribution tree; either way
//     a node raises its floors and drops copies older than them;
//   - CAS-strict mode carries the current generation as a read floor on
//     the request itself, so a stale copy self-heals to a miss
//     (cascache-style read-side validation) and a read after a write can
//     never observe the old bytes.
//
// The same three engine entry points (LookupFresh, ApplyInvalidations,
// generation-stamped DownStep/Promote) serve the replay simulator, the
// actor cluster and the HTTP gateway chain; conformance replays a mixed
// read/write trace through all three and asserts identical served, placed
// and invalidated sets.
//
// Dependency rule (enforced by cmd/importguard): stdlib + internal/model +
// internal/metrics only — the substrate sits below every incarnation.
package coherency

import (
	"fmt"
	"math/rand"
	"sync"

	"cascade/internal/metrics"
	"cascade/internal/model"
)

// Mode selects the consistency mechanism a node enforces on reads.
type Mode uint8

// Available modes, ordered by strictness.
const (
	// ModeNone is the paper's assumption: cached copies are served as-is.
	ModeNone Mode = iota
	// ModeTTL serves copies younger than a freshness lifetime and demotes
	// older ones to a miss (the refetch travels the path like any miss).
	ModeTTL
	// ModePSI applies origin-piggybacked invalidations: responses served
	// by the origin carry the tail of its invalidation log and every node
	// on the response path raises its floors and drops stale copies.
	ModePSI
	// ModeCAS is strict read-your-writes: requests carry the object's
	// current generation as a floor and any older copy self-heals to a
	// miss, so no read after a write ever observes the old bytes.
	ModeCAS
)

// String names the mode (the -exp freshness-frontier column labels).
func (m Mode) String() string {
	switch m {
	case ModeTTL:
		return "TTL"
	case ModePSI:
		return "PSI"
	case ModeCAS:
		return "CAS"
	default:
		return "None"
	}
}

// ParseMode is String's inverse (case-sensitive, matching flag syntax).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "None", "none":
		return ModeNone, nil
	case "TTL", "ttl":
		return ModeTTL, nil
	case "PSI", "psi":
		return ModePSI, nil
	case "CAS", "cas":
		return ModeCAS, nil
	}
	return ModeNone, fmt.Errorf("coherency: unknown mode %q", s)
}

// Validates reports whether the mode compares copy generations against
// floors on the read path (PSI and CAS; None and TTL never consult floors).
func (m Mode) Validates() bool { return m == ModePSI || m == ModeCAS }

// TailK is the number of most-recent invalidation-log entries an origin
// piggybacks on a response (and an explicit invalidation pushes down the
// tree). Every incarnation uses the same K with the same cursor rule, so
// the applied sets agree across transports.
const TailK = 32

// logCap bounds the authority's in-memory invalidation log ring. Entries
// older than the last logCap writes fall off; a node whose cursor lags
// further behind simply misses them — bounded staleness under PSI, which
// CAS-strict's request floors close completely.
const logCap = 256

// Invalidation is one entry of the origin's invalidation log: write number
// Seq set object Obj to generation Gen.
type Invalidation struct {
	Seq uint64         `json:"seq"`
	Obj model.ObjectID `json:"obj"`
	Gen uint64         `json:"gen"`
}

// Authority is the origin-side generation authority: the current
// generation of every written object plus a bounded log of recent writes.
// Safe for concurrent use (the gateway origin serves requests in parallel).
type Authority struct {
	mu   sync.RWMutex
	gens map[model.ObjectID]uint64
	log  [logCap]Invalidation
	head uint64 // sequence number of the latest write (0 = none yet)
}

// NewAuthority builds an empty authority: every object at generation 0.
func NewAuthority() *Authority {
	return &Authority{gens: make(map[model.ObjectID]uint64)}
}

// Bump records a write of obj: its generation increments and the write is
// appended to the invalidation log. Returns the new generation and the
// write's sequence number.
func (a *Authority) Bump(obj model.ObjectID) (gen, seq uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	gen = a.gens[obj] + 1
	a.gens[obj] = gen
	a.head++
	a.log[a.head%logCap] = Invalidation{Seq: a.head, Obj: obj, Gen: gen}
	return gen, a.head
}

// Gen returns obj's current generation (0 if never written).
func (a *Authority) Gen(obj model.ObjectID) uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.gens[obj]
}

// Head returns the sequence number of the latest write.
func (a *Authority) Head() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.head
}

// Tail appends the most recent min(TailK, available) log entries to buf in
// ascending sequence order and returns it — the payload an origin
// piggybacks on a response (X-Cascade-Inval on the wire).
func (a *Authority) Tail(buf []Invalidation) []Invalidation {
	a.mu.RLock()
	defer a.mu.RUnlock()
	n := uint64(TailK)
	if a.head < n {
		n = a.head
	}
	if a.head > logCap && n > logCap {
		n = logCap
	}
	for seq := a.head - n + 1; n > 0 && seq <= a.head; seq++ {
		buf = append(buf, a.log[seq%logCap])
	}
	return buf
}

// NodeView is one cache node's view of the coherency protocol: its
// generation floors (the oldest generation of each object it may still
// serve), its cursor into the authority's log, and — in TTL mode — the
// fetch times of its copies. Safe for concurrent use; the engine's shard
// locks do not cover it.
type NodeView struct {
	mode     Mode
	lifetime float64

	mu      sync.RWMutex
	floors  map[model.ObjectID]uint64
	fetched map[model.ObjectID]float64
	cursor  uint64

	m *Metrics // nil-safe: counters are optional
}

// NewNodeView builds a view enforcing mode. lifetime is the TTL freshness
// lifetime in seconds (default 3600; ignored by other modes).
func NewNodeView(mode Mode, lifetime float64) *NodeView {
	if lifetime <= 0 {
		lifetime = 3600
	}
	v := &NodeView{mode: mode, lifetime: lifetime, floors: make(map[model.ObjectID]uint64)}
	if mode == ModeTTL {
		v.fetched = make(map[model.ObjectID]float64)
	}
	return v
}

// Mode returns the enforced mode.
func (v *NodeView) Mode() Mode { return v.mode }

// SetMetrics attaches the coherency counters (nil detaches).
func (v *NodeView) SetMetrics(m *Metrics) {
	v.mu.Lock()
	v.m = m
	v.mu.Unlock()
}

// Metrics returns the attached counters (may be nil).
func (v *NodeView) Metrics() *Metrics {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.m
}

// Floor returns the oldest generation of obj this node may serve.
func (v *NodeView) Floor(obj model.ObjectID) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.floors[obj]
}

// Raise lifts obj's floor to gen and reports whether it moved.
func (v *NodeView) Raise(obj model.ObjectID, gen uint64) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.floors[obj] >= gen {
		return false
	}
	v.floors[obj] = gen
	return true
}

// ShouldApply reports whether a log entry with sequence seq is news to
// this node (strictly past its cursor).
func (v *NodeView) ShouldApply(seq uint64) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return seq > v.cursor
}

// AdvanceCursor moves the cursor forward to head (never backward).
func (v *NodeView) AdvanceCursor(head uint64) {
	v.mu.Lock()
	if head > v.cursor {
		v.cursor = head
	}
	v.mu.Unlock()
}

// Cursor returns the highest log sequence this node has applied.
func (v *NodeView) Cursor() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.cursor
}

// RecordFetch notes that this node received a fresh copy of obj at time
// now (TTL bookkeeping; a no-op in other modes).
func (v *NodeView) RecordFetch(obj model.ObjectID, now float64) {
	if v.mode != ModeTTL {
		return
	}
	v.mu.Lock()
	v.fetched[obj] = now
	v.mu.Unlock()
}

// Expired reports whether obj's copy has outlived the TTL lifetime. Copies
// never recorded (adopted from before the view attached) count as fresh
// from now, matching the old tracker's adoption rule.
func (v *NodeView) Expired(obj model.ObjectID, now float64) bool {
	if v.mode != ModeTTL {
		return false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	t, ok := v.fetched[obj]
	if !ok {
		v.fetched[obj] = now
		return false
	}
	if now-t > v.lifetime {
		delete(v.fetched, obj)
		return true
	}
	return false
}

// Forget drops obj's TTL bookkeeping (the copy left the cache).
func (v *NodeView) Forget(obj model.ObjectID) {
	if v.mode != ModeTTL {
		return
	}
	v.mu.Lock()
	delete(v.fetched, obj)
	v.mu.Unlock()
}

// Floors snapshots the floors map — the node's invalidation state. The
// conformance suite compares these across incarnations: equal floors mean
// the same invalidations reached the same nodes.
func (v *NodeView) Floors() map[model.ObjectID]uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[model.ObjectID]uint64, len(v.floors))
	for k, val := range v.floors {
		out[k] = val
	}
	return out
}

// Metrics bundles the cascade_coherency_* counters. All methods are
// nil-safe so unconfigured paths pay only a nil check.
type Metrics struct {
	staleHits     *metrics.Counter
	invalidations *metrics.Counter
	revalidations *metrics.Counter
	casConflicts  *metrics.Counter
}

// NewMetrics registers the coherency series on reg with the given labels.
func NewMetrics(reg *metrics.Registry, labels ...metrics.Label) *Metrics {
	return &Metrics{
		staleHits:     reg.Counter("cascade_coherency_stale_hits_total", "Stale copies detected on the read path (self-healed to a miss, or served stale-if-error).", labels...),
		invalidations: reg.Counter("cascade_coherency_invalidations_total", "Invalidation-log entries applied at this node (floors raised).", labels...),
		revalidations: reg.Counter("cascade_coherency_revalidations_total", "TTL expiries demoted to a revalidating miss.", labels...),
		casConflicts:  reg.Counter("cascade_coherency_cas_conflicts_total", "Placements rejected because the copy's generation was below the node's floor.", labels...),
	}
}

// StaleHit counts one stale copy detected on the read path.
func (m *Metrics) StaleHit() {
	if m != nil {
		m.staleHits.Inc()
	}
}

// Invalidation counts one applied invalidation-log entry.
func (m *Metrics) Invalidation() {
	if m != nil {
		m.invalidations.Inc()
	}
}

// Revalidation counts one TTL expiry demoted to a miss.
func (m *Metrics) Revalidation() {
	if m != nil {
		m.revalidations.Inc()
	}
}

// CASConflict counts one generation-rejected placement.
func (m *Metrics) CASConflict() {
	if m != nil {
		m.casConflicts.Inc()
	}
}

// Config parameterizes the synthetic update process driving an authority
// in replay experiments.
type Config struct {
	Mode Mode
	// ObjectUpdateInterval is the mean seconds between updates of one
	// object (Poisson). Zero disables updates entirely.
	ObjectUpdateInterval float64
	// Lifetime is the TTL mode's freshness lifetime in seconds
	// (default 3600).
	Lifetime float64
	// Seed drives the update process.
	Seed int64
}

// Process is a seeded Poisson object-update process (web objects are
// mostly static — access ≫ update frequency — so rates are low). Each
// generated update bumps the authority, exactly as a write would.
// Single-owner, like the simulator that drives it.
type Process struct {
	auth    *Authority
	objects []model.Object
	r       *rand.Rand
	nextUpd float64
	rate    float64 // total update rate (updates/second over all objects)

	// Updates counts object updates generated so far.
	Updates int64
}

// NewProcess builds the update process over a catalog's objects, driving
// auth. The RNG stream (seed+99) and rate math match the seed-era tracker,
// keeping replay results comparable across the refactor.
func NewProcess(cfg Config, objects []model.Object, auth *Authority) *Process {
	p := &Process{
		auth:    auth,
		objects: objects,
		r:       rand.New(rand.NewSource(cfg.Seed + 99)),
	}
	if cfg.ObjectUpdateInterval > 0 && len(objects) > 0 {
		p.rate = float64(len(objects)) / cfg.ObjectUpdateInterval
		p.nextUpd = p.r.ExpFloat64() / p.rate
	}
	return p
}

// Advance generates all object updates up to time now, bumping the
// authority for each, and returns how many fired.
func (p *Process) Advance(now float64) int {
	if p.rate == 0 {
		return 0
	}
	fired := 0
	for p.nextUpd <= now {
		obj := p.objects[p.r.Intn(len(p.objects))]
		p.auth.Bump(obj.ID)
		p.Updates++
		fired++
		p.nextUpd += p.r.ExpFloat64() / p.rate
	}
	return fired
}

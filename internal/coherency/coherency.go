// Package coherency supplies the cache-consistency substrate the paper
// assumes away: §2 reads "we shall assume the objects stored in the caches
// are up-to-date (e.g., by using a cache coherency protocol [9] if
// necessary)", citing Krishnamurthy & Wills' piggyback server invalidation
// (PSI). This package implements that assumed machinery so the assumption
// is testable rather than taken on faith:
//
//   - a seeded Poisson object-update process (web objects are mostly
//     static — access ≫ update frequency [13] — so rates are low);
//   - per-(node, object) fetched-version tracking, driven by the
//     simulator's placement outcomes;
//   - three policies: None (the paper's assumption), TTL (serve within a
//     freshness lifetime, refetch after expiry), and PSI (responses from
//     an origin piggyback the server's invalidations since the node's last
//     contact, proactively dropping stale copies).
//
// The simulator consults a Tracker around each request and reports stale
// hits and consistency refetches next to the paper's base metrics, letting
// experiments quantify how much staleness the coordinated scheme would
// actually serve at realistic update rates.
package coherency

import (
	"math/rand"

	"cascade/internal/model"
)

// Policy selects the consistency mechanism.
type Policy int

// Available policies.
const (
	// None is the paper's assumption: cached copies are always fresh.
	None Policy = iota
	// TTL serves copies younger than a lifetime and refetches older
	// ones from the origin (weak consistency, bounded staleness).
	TTL
	// PSI piggybacks a server's invalidations on every response it
	// serves, dropping stale copies at the caches the response passes.
	PSI
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case TTL:
		return "TTL"
	case PSI:
		return "PSI"
	default:
		return "None"
	}
}

// Config parameterizes a Tracker.
type Config struct {
	Policy Policy
	// ObjectUpdateInterval is the mean seconds between updates of one
	// object (Poisson). Zero disables updates entirely.
	ObjectUpdateInterval float64
	// Lifetime is the TTL policy's freshness lifetime in seconds
	// (default 3600).
	Lifetime float64
	// Seed drives the update process.
	Seed int64
}

// update is one entry of a server's invalidation log.
type update struct {
	time float64
	obj  model.ObjectID
}

// copyState is the consistency metadata of one cached copy.
type copyState struct {
	version int64
	fetched float64
}

// Tracker maintains object versions, the per-server invalidation logs and
// the per-node fetched-version tables. It is single-owner, like the
// simulator that drives it.
type Tracker struct {
	cfg     Config
	objects []model.Object

	r       *rand.Rand
	now     float64
	nextUpd float64
	rate    float64 // total update rate (updates/second over all objects)

	version []int64
	logs    map[model.ServerID][]update // per-server invalidation log
	copies  map[model.NodeID]map[model.ObjectID]copyState
	contact map[model.NodeID]map[model.ServerID]float64 // last PSI sync time

	// Updates counts object updates generated so far.
	Updates int64
}

// NewTracker builds a tracker over a catalog's objects.
func NewTracker(cfg Config, objects []model.Object) *Tracker {
	if cfg.Lifetime <= 0 {
		cfg.Lifetime = 3600
	}
	t := &Tracker{
		cfg:     cfg,
		objects: objects,
		r:       rand.New(rand.NewSource(cfg.Seed + 99)),
		version: make([]int64, len(objects)),
		logs:    make(map[model.ServerID][]update),
		copies:  make(map[model.NodeID]map[model.ObjectID]copyState),
		contact: make(map[model.NodeID]map[model.ServerID]float64),
	}
	if cfg.ObjectUpdateInterval > 0 && len(objects) > 0 {
		t.rate = float64(len(objects)) / cfg.ObjectUpdateInterval
		t.nextUpd = t.r.ExpFloat64() / t.rate
	}
	return t
}

// Policy returns the configured policy.
func (t *Tracker) Policy() Policy { return t.cfg.Policy }

// Advance generates all object updates up to time now.
func (t *Tracker) Advance(now float64) {
	if t.rate == 0 {
		t.now = now
		return
	}
	for t.nextUpd <= now {
		obj := t.objects[t.r.Intn(len(t.objects))]
		t.version[obj.ID]++
		t.Updates++
		t.logs[obj.Server] = append(t.logs[obj.Server], update{time: t.nextUpd, obj: obj.ID})
		t.nextUpd += t.r.ExpFloat64() / t.rate
	}
	t.now = now
}

// Version returns an object's current version.
func (t *Tracker) Version(obj model.ObjectID) int64 { return t.version[obj] }

// RecordFetch notes that node just received a fresh copy of obj.
func (t *Tracker) RecordFetch(node model.NodeID, obj model.ObjectID, now float64) {
	m := t.copies[node]
	if m == nil {
		m = make(map[model.ObjectID]copyState)
		t.copies[node] = m
	}
	m[obj] = copyState{version: t.version[obj], fetched: now}
}

// HitOutcome classifies a cache hit under the active policy.
type HitOutcome struct {
	// Refetch is true when the policy forces revalidation from the
	// origin (TTL expiry): the request pays the full path cost and the
	// copy is refreshed.
	Refetch bool
	// Stale is true when the hit served (or would have served) an
	// out-of-date copy.
	Stale bool
}

// OnHit classifies a hit of obj at node at time now and updates the copy
// metadata accordingly. Nodes holding copies predating the tracker are
// adopted as fresh.
func (t *Tracker) OnHit(node model.NodeID, obj model.ObjectID, now float64) HitOutcome {
	m := t.copies[node]
	if m == nil {
		m = make(map[model.ObjectID]copyState)
		t.copies[node] = m
	}
	st, ok := m[obj]
	if !ok {
		m[obj] = copyState{version: t.version[obj], fetched: now}
		return HitOutcome{}
	}
	stale := st.version != t.version[obj]
	if t.cfg.Policy == TTL && now-st.fetched > t.cfg.Lifetime {
		m[obj] = copyState{version: t.version[obj], fetched: now}
		return HitOutcome{Refetch: true, Stale: stale}
	}
	return HitOutcome{Stale: stale}
}

// SyncWithServer applies PSI: a response from server passed through node,
// carrying the server's invalidations since the node's last contact. The
// node drops its stale copies (marks them invalid so subsequent hits
// refetch... in the simulator the scheme still holds the bytes; Invalidated
// returns the IDs so the caller can evict them from the scheme's store if
// it can).
func (t *Tracker) SyncWithServer(node model.NodeID, server model.ServerID, now float64) []model.ObjectID {
	if t.cfg.Policy != PSI {
		return nil
	}
	cm := t.contact[node]
	if cm == nil {
		cm = make(map[model.ServerID]float64)
		t.contact[node] = cm
	}
	last := cm[server]
	cm[server] = now

	log := t.logs[server]
	var invalidated []model.ObjectID
	copies := t.copies[node]
	if copies == nil {
		return nil
	}
	for i := len(log) - 1; i >= 0 && log[i].time > last; i-- {
		st, ok := copies[log[i].obj]
		if ok && st.version != t.version[log[i].obj] {
			// Refresh the metadata to current: PSI invalidates the
			// copy; the next request fetches it anew. We model
			// invalidation as eviction at the caller.
			delete(copies, log[i].obj)
			invalidated = append(invalidated, log[i].obj)
		}
	}
	return invalidated
}

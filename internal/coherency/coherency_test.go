package coherency

import (
	"testing"

	"cascade/internal/model"
)

func catalog(n int, servers int) []model.Object {
	out := make([]model.Object, n)
	for i := range out {
		out[i] = model.Object{ID: model.ObjectID(i), Size: 1000, Server: model.ServerID(i % servers)}
	}
	return out
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{None: "None", TTL: "TTL", PSI: "PSI"} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", p, p.String())
		}
	}
}

func TestNoUpdatesWhenDisabled(t *testing.T) {
	tr := NewTracker(Config{Policy: None}, catalog(10, 2))
	tr.Advance(1e9)
	if tr.Updates != 0 {
		t.Fatalf("updates generated with interval 0: %d", tr.Updates)
	}
}

func TestUpdateProcessRate(t *testing.T) {
	// 100 objects, one update per object per 1000s → 0.1 updates/s;
	// advancing 10000s should yield ≈1000 updates.
	tr := NewTracker(Config{Policy: None, ObjectUpdateInterval: 1000, Seed: 1}, catalog(100, 4))
	tr.Advance(10000)
	if tr.Updates < 700 || tr.Updates > 1300 {
		t.Fatalf("updates = %d, want ≈1000", tr.Updates)
	}
	var bumped int
	for i := 0; i < 100; i++ {
		if tr.Version(model.ObjectID(i)) > 0 {
			bumped++
		}
	}
	if bumped < 50 {
		t.Fatalf("only %d objects ever updated", bumped)
	}
}

func TestAdvanceMonotoneAndDeterministic(t *testing.T) {
	a := NewTracker(Config{ObjectUpdateInterval: 100, Seed: 7}, catalog(50, 5))
	b := NewTracker(Config{ObjectUpdateInterval: 100, Seed: 7}, catalog(50, 5))
	a.Advance(500)
	a.Advance(1000)
	b.Advance(1000)
	if a.Updates != b.Updates {
		t.Fatalf("split advance diverged: %d vs %d", a.Updates, b.Updates)
	}
	for i := 0; i < 50; i++ {
		if a.Version(model.ObjectID(i)) != b.Version(model.ObjectID(i)) {
			t.Fatalf("version of object %d diverged", i)
		}
	}
}

func TestOnHitFreshAndStale(t *testing.T) {
	objs := catalog(2, 1)
	tr := NewTracker(Config{Policy: None, ObjectUpdateInterval: 0}, objs)
	tr.RecordFetch(5, 0, 10)
	if h := tr.OnHit(5, 0, 20); h.Stale || h.Refetch {
		t.Fatalf("fresh copy classified %+v", h)
	}
	// Manually bump the version (simulating an update).
	tr.version[0]++
	if h := tr.OnHit(5, 0, 30); !h.Stale || h.Refetch {
		t.Fatalf("stale copy classified %+v", h)
	}
}

func TestOnHitAdoptsUnknownCopies(t *testing.T) {
	tr := NewTracker(Config{Policy: TTL, Lifetime: 100}, catalog(1, 1))
	if h := tr.OnHit(3, 0, 50); h.Stale || h.Refetch {
		t.Fatalf("adopted copy classified %+v", h)
	}
	// Now it is tracked: after the lifetime it must refetch.
	if h := tr.OnHit(3, 0, 200); !h.Refetch {
		t.Fatalf("expired copy classified %+v", h)
	}
	// The refetch refreshed it.
	if h := tr.OnHit(3, 0, 250); h.Refetch {
		t.Fatalf("refreshed copy classified %+v", h)
	}
}

func TestTTLServesStaleWithinLifetime(t *testing.T) {
	tr := NewTracker(Config{Policy: TTL, Lifetime: 1000}, catalog(1, 1))
	tr.RecordFetch(1, 0, 0)
	tr.version[0]++
	h := tr.OnHit(1, 0, 500)
	if !h.Stale || h.Refetch {
		t.Fatalf("TTL within lifetime: %+v", h)
	}
	h = tr.OnHit(1, 0, 1500)
	if !h.Refetch {
		t.Fatalf("TTL past lifetime: %+v", h)
	}
}

func TestPSISyncInvalidatesStaleCopies(t *testing.T) {
	objs := catalog(4, 2) // objects 0,2 on server 0; 1,3 on server 1
	tr := NewTracker(Config{Policy: PSI}, objs)
	tr.RecordFetch(7, 0, 0)
	tr.RecordFetch(7, 2, 0)
	tr.RecordFetch(7, 1, 0)

	// Update object 0 (server 0) and object 1 (server 1) "manually".
	tr.version[0]++
	tr.logs[0] = append(tr.logs[0], update{time: 5, obj: 0})
	tr.version[1]++
	tr.logs[1] = append(tr.logs[1], update{time: 6, obj: 1})

	inv := tr.SyncWithServer(7, 0, 10)
	if len(inv) != 1 || inv[0] != 0 {
		t.Fatalf("sync with server 0 invalidated %v, want [0]", inv)
	}
	// Object 1 (other server) untouched; object 2 (same server, not
	// updated) untouched.
	if h := tr.OnHit(7, 2, 11); h.Stale {
		t.Fatal("unmodified copy invalidated")
	}
	if h := tr.OnHit(7, 1, 11); !h.Stale {
		t.Fatal("stale copy of other server lost its staleness")
	}
	// Re-sync finds nothing new.
	if inv := tr.SyncWithServer(7, 0, 12); len(inv) != 0 {
		t.Fatalf("second sync invalidated %v", inv)
	}
}

func TestPSIDisabledForOtherPolicies(t *testing.T) {
	tr := NewTracker(Config{Policy: TTL}, catalog(2, 1))
	tr.RecordFetch(1, 0, 0)
	tr.version[0]++
	tr.logs[0] = append(tr.logs[0], update{time: 1, obj: 0})
	if inv := tr.SyncWithServer(1, 0, 5); inv != nil {
		t.Fatalf("TTL policy ran PSI sync: %v", inv)
	}
}

func TestLifetimeDefault(t *testing.T) {
	tr := NewTracker(Config{Policy: TTL}, catalog(1, 1))
	if tr.cfg.Lifetime != 3600 {
		t.Fatalf("default lifetime = %v", tr.cfg.Lifetime)
	}
}

package coherency

import (
	"strings"
	"testing"

	"cascade/internal/metrics"
	"cascade/internal/model"
)

func catalog(n int) []model.Object {
	out := make([]model.Object, n)
	for i := range out {
		out[i] = model.Object{ID: model.ObjectID(i), Size: 1000, Server: model.ServerID(i % 4)}
	}
	return out
}

func TestModeStringAndParse(t *testing.T) {
	for m, want := range map[Mode]string{ModeNone: "None", ModeTTL: "TTL", ModePSI: "PSI", ModeCAS: "CAS"} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", m, m.String())
		}
		got, err := ParseMode(want)
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", want, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if ModeNone.Validates() || ModeTTL.Validates() || !ModePSI.Validates() || !ModeCAS.Validates() {
		t.Fatal("Validates() wrong for some mode")
	}
}

func TestAuthorityBumpAndTail(t *testing.T) {
	a := NewAuthority()
	if a.Gen(7) != 0 || a.Head() != 0 {
		t.Fatal("fresh authority not at generation zero")
	}
	gen, seq := a.Bump(7)
	if gen != 1 || seq != 1 {
		t.Fatalf("first bump = gen %d seq %d", gen, seq)
	}
	gen, seq = a.Bump(7)
	if gen != 2 || seq != 2 {
		t.Fatalf("second bump = gen %d seq %d", gen, seq)
	}
	a.Bump(9)
	if a.Gen(7) != 2 || a.Gen(9) != 1 || a.Head() != 3 {
		t.Fatalf("gens 7=%d 9=%d head=%d", a.Gen(7), a.Gen(9), a.Head())
	}
	tail := a.Tail(nil)
	if len(tail) != 3 {
		t.Fatalf("tail length %d", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq <= tail[i-1].Seq {
			t.Fatalf("tail not ascending: %+v", tail)
		}
	}
	if last := tail[len(tail)-1]; last.Obj != 9 || last.Gen != 1 || last.Seq != 3 {
		t.Fatalf("latest tail entry %+v", last)
	}
}

func TestAuthorityTailBounded(t *testing.T) {
	a := NewAuthority()
	for i := 0; i < 3*logCap; i++ {
		a.Bump(model.ObjectID(i % 10))
	}
	tail := a.Tail(nil)
	if len(tail) != TailK {
		t.Fatalf("tail length %d, want %d", len(tail), TailK)
	}
	if tail[len(tail)-1].Seq != a.Head() {
		t.Fatalf("tail does not end at head: %d vs %d", tail[len(tail)-1].Seq, a.Head())
	}
}

func TestNodeViewFloorsAndCursor(t *testing.T) {
	v := NewNodeView(ModePSI, 0)
	if v.Floor(1) != 0 {
		t.Fatal("fresh view has nonzero floor")
	}
	if !v.Raise(1, 3) || v.Raise(1, 2) || v.Raise(1, 3) {
		t.Fatal("Raise monotonicity broken")
	}
	if v.Floor(1) != 3 {
		t.Fatalf("floor = %d", v.Floor(1))
	}
	if !v.ShouldApply(1) {
		t.Fatal("fresh cursor rejects seq 1")
	}
	v.AdvanceCursor(5)
	if v.ShouldApply(5) || !v.ShouldApply(6) || v.Cursor() != 5 {
		t.Fatal("cursor semantics broken")
	}
	v.AdvanceCursor(2)
	if v.Cursor() != 5 {
		t.Fatal("cursor moved backward")
	}
	f := v.Floors()
	if len(f) != 1 || f[1] != 3 {
		t.Fatalf("floors snapshot %v", f)
	}
}

func TestNodeViewTTL(t *testing.T) {
	v := NewNodeView(ModeTTL, 100)
	// Unknown copies are adopted as fresh-from-now.
	if v.Expired(4, 50) {
		t.Fatal("adopted copy expired immediately")
	}
	if v.Expired(4, 140) {
		t.Fatal("copy expired within lifetime")
	}
	if !v.Expired(4, 151) {
		t.Fatal("copy did not expire past lifetime")
	}
	// Expiry forgot the copy; a refetch restarts the clock.
	v.RecordFetch(4, 200)
	if v.Expired(4, 290) {
		t.Fatal("refetched copy expired early")
	}
	v.Forget(4)
	if v.Expired(4, 1e6) {
		t.Fatal("forgotten copy adopted as expired")
	}
	// Non-TTL modes never expire and never track.
	p := NewNodeView(ModeCAS, 1)
	p.RecordFetch(4, 0)
	if p.Expired(4, 1e9) {
		t.Fatal("CAS mode expired a copy")
	}
}

func TestNodeViewLifetimeDefault(t *testing.T) {
	v := NewNodeView(ModeTTL, 0)
	if v.lifetime != 3600 {
		t.Fatalf("default lifetime = %v", v.lifetime)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.StaleHit()
	m.Invalidation()
	m.Revalidation()
	m.CASConflict()

	reg := metrics.NewRegistry()
	mm := NewMetrics(reg, metrics.L("node", "0"))
	mm.StaleHit()
	mm.Invalidation()
	mm.Invalidation()
	mm.Revalidation()
	mm.CASConflict()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cascade_coherency_stale_hits_total{node="0"} 1`,
		`cascade_coherency_invalidations_total{node="0"} 2`,
		`cascade_coherency_revalidations_total{node="0"} 1`,
		`cascade_coherency_cas_conflicts_total{node="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestProcessRateAndDeterminism(t *testing.T) {
	// 100 objects, one update per object per 1000s → 0.1 updates/s;
	// advancing 10000s should yield ≈1000 updates.
	a := NewAuthority()
	p := NewProcess(Config{ObjectUpdateInterval: 1000, Seed: 1}, catalog(100), a)
	p.Advance(10000)
	if p.Updates < 700 || p.Updates > 1300 {
		t.Fatalf("updates = %d, want ≈1000", p.Updates)
	}
	var bumped int
	for i := 0; i < 100; i++ {
		if a.Gen(model.ObjectID(i)) > 0 {
			bumped++
		}
	}
	if bumped < 50 {
		t.Fatalf("only %d objects ever updated", bumped)
	}

	// Split advances replay identically to one big advance.
	a2, a3 := NewAuthority(), NewAuthority()
	p2 := NewProcess(Config{ObjectUpdateInterval: 100, Seed: 7}, catalog(50), a2)
	p3 := NewProcess(Config{ObjectUpdateInterval: 100, Seed: 7}, catalog(50), a3)
	p2.Advance(500)
	p2.Advance(1000)
	p3.Advance(1000)
	if p2.Updates != p3.Updates {
		t.Fatalf("split advance diverged: %d vs %d", p2.Updates, p3.Updates)
	}
	for i := 0; i < 50; i++ {
		if a2.Gen(model.ObjectID(i)) != a3.Gen(model.ObjectID(i)) {
			t.Fatalf("generation of object %d diverged", i)
		}
	}

	// Interval 0 disables the process.
	q := NewProcess(Config{}, catalog(10), NewAuthority())
	if q.Advance(1e9) != 0 || q.Updates != 0 {
		t.Fatalf("updates generated with interval 0: %d", q.Updates)
	}
}

func TestTailCursorRule(t *testing.T) {
	// The conformance equality argument in miniature: two views applying
	// the same tails under the Seq>cursor rule end with identical floors.
	a := NewAuthority()
	v1, v2 := NewNodeView(ModePSI, 0), NewNodeView(ModePSI, 0)
	apply := func(v *NodeView) {
		tail := a.Tail(nil)
		for _, inv := range tail {
			if v.ShouldApply(inv.Seq) {
				v.Raise(inv.Obj, inv.Gen)
			}
		}
		v.AdvanceCursor(a.Head())
	}
	a.Bump(1)
	a.Bump(2)
	apply(v1)
	a.Bump(1)
	apply(v1)
	apply(v2) // v2 sees everything at once
	f1, f2 := v1.Floors(), v2.Floors()
	if len(f1) != len(f2) {
		t.Fatalf("floors diverge: %v vs %v", f1, f2)
	}
	for k, g := range f1 {
		if f2[k] != g {
			t.Fatalf("floor of %d diverges: %d vs %d", k, g, f2[k])
		}
	}
	if v1.Cursor() != v2.Cursor() {
		t.Fatalf("cursors diverge: %d vs %d", v1.Cursor(), v2.Cursor())
	}
}

package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestOptimizeEmptyPath(t *testing.T) {
	p := Optimize(nil)
	if len(p.Indices) != 0 || p.Gain != 0 {
		t.Fatalf("empty path: got %+v, want empty placement with zero gain", p)
	}
}

func TestOptimizeSingleNode(t *testing.T) {
	tests := []struct {
		name string
		node Node
		want []int
		gain float64
	}{
		{"beneficial", Node{Freq: 2, MissPenalty: 3, CostLoss: 1}, []int{0}, 5},
		{"break-even", Node{Freq: 1, MissPenalty: 1, CostLoss: 1}, nil, 0},
		{"harmful", Node{Freq: 1, MissPenalty: 1, CostLoss: 5}, nil, 0},
		{"zero-penalty", Node{Freq: 10, MissPenalty: 0, CostLoss: 0.1}, nil, 0},
		{"free-space", Node{Freq: 1, MissPenalty: 2, CostLoss: 0}, []int{0}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := Optimize([]Node{tc.node})
			if !reflect.DeepEqual(p.Indices, tc.want) || math.Abs(p.Gain-tc.gain) > 1e-12 {
				t.Fatalf("got %+v, want indices=%v gain=%v", p, tc.want, tc.gain)
			}
		})
	}
}

func TestOptimizeKnownInstance(t *testing.T) {
	// Three-node path: caching at node 0 alone saves f0*m0=6-4=2;
	// caching at 0 and 2 saves (f0-f2)*m0 - l0 + f2*m2 - l2
	// = (3-1)*2-4 + 1*5-0.5 = 0 + 4.5 = 4.5; caching at 2 alone saves
	// 1*5-0.5 = 4.5; caching at 0,1,2:
	// (3-2)*2-4 + (2-1)*3-0.2 + 1*5-0.5 = -2+2.8+4.5 = 5.3? no:
	// (3-2)*2-4 = -2; (2-1)*3-0.2 = 2.8; (1-0)*5-0.5 = 4.5 → 5.3.
	// caching at 1,2: (2-1)*3-0.2 + 4.5 = 7.3 — best.
	path := []Node{
		{Freq: 3, MissPenalty: 2, CostLoss: 4},
		{Freq: 2, MissPenalty: 3, CostLoss: 0.2},
		{Freq: 1, MissPenalty: 5, CostLoss: 0.5},
	}
	p := Optimize(path)
	if want := []int{1, 2}; !reflect.DeepEqual(p.Indices, want) {
		t.Fatalf("indices = %v, want %v (gain %v)", p.Indices, want, p.Gain)
	}
	if math.Abs(p.Gain-7.3) > 1e-12 {
		t.Fatalf("gain = %v, want 7.3", p.Gain)
	}
}

func TestOptimizeExcludesInfiniteCostLoss(t *testing.T) {
	path := []Node{
		{Freq: 5, MissPenalty: 10, CostLoss: math.Inf(1)},
		{Freq: 4, MissPenalty: 12, CostLoss: 1},
	}
	p := Optimize(path)
	if want := []int{1}; !reflect.DeepEqual(p.Indices, want) {
		t.Fatalf("indices = %v, want %v", p.Indices, want)
	}
}

func TestOptimizeAllZeroFreq(t *testing.T) {
	path := []Node{
		{Freq: 0, MissPenalty: 10, CostLoss: 0},
		{Freq: 0, MissPenalty: 20, CostLoss: 1},
	}
	p := Optimize(path)
	if len(p.Indices) != 0 || p.Gain != 0 {
		t.Fatalf("got %+v, want nothing placed", p)
	}
}

// randomPath builds a monotone-frequency instance like the ones the system
// model produces.
func randomPath(r *rand.Rand, n int) []Node {
	path := make([]Node, n)
	f := 10 * r.Float64()
	for i := range path {
		path[i] = Node{
			Freq:        f,
			MissPenalty: 5 * r.Float64(),
			CostLoss:    3 * r.Float64(),
		}
		f *= r.Float64() // non-increasing
	}
	return path
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(12)
		path := randomPath(r, n)
		got := Optimize(path)
		want := BruteForce(path)
		if math.Abs(got.Gain-want.Gain) > 1e-9 {
			t.Fatalf("trial %d: DP gain %v != brute-force gain %v\npath=%+v",
				trial, got.Gain, want.Gain, path)
		}
		if g := Gain(path, got.Indices); math.Abs(g-got.Gain) > 1e-9 {
			t.Fatalf("trial %d: reported gain %v but Gain(indices)=%v", trial, got.Gain, g)
		}
	}
}

func TestOptimizeMatchesBruteForceNonMonotone(t *testing.T) {
	// Theorem 1 does not require monotone frequencies; the DP must stay
	// exact for arbitrary non-negative inputs.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(11)
		path := make([]Node, n)
		for i := range path {
			path[i] = Node{
				Freq:        10 * r.Float64(),
				MissPenalty: 5 * r.Float64(),
				CostLoss:    3 * r.Float64(),
			}
		}
		got, want := Optimize(path), BruteForce(path)
		if math.Abs(got.Gain-want.Gain) > 1e-9 {
			t.Fatalf("trial %d: DP gain %v != brute-force %v\npath=%+v",
				trial, got.Gain, want.Gain, path)
		}
	}
}

func TestOptimizeIndicesStrictlyIncreasing(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		path := randomPath(r, 1+r.Intn(20))
		p := Optimize(path)
		if !sort.IntsAreSorted(p.Indices) {
			t.Fatalf("indices not sorted: %v", p.Indices)
		}
		for i := 1; i < len(p.Indices); i++ {
			if p.Indices[i] == p.Indices[i-1] {
				t.Fatalf("duplicate index in %v", p.Indices)
			}
		}
		for _, v := range p.Indices {
			if v < 0 || v >= len(path) {
				t.Fatalf("index %d out of range (n=%d)", v, len(path))
			}
		}
	}
}

// TestTheorem2 verifies the local-benefit property: every index chosen by
// the optimal placement satisfies f_i·m_i ≥ l_i.
func TestTheorem2(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 1000; trial++ {
		path := randomPath(r, 1+r.Intn(15))
		p := Optimize(path)
		if !LocallyBeneficial(path, p.Indices) {
			t.Fatalf("Theorem 2 violated: placement %v on %+v", p.Indices, path)
		}
	}
}

func TestOptimizeGainNonNegativeQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(fs, ms, ls []float64) bool {
		n := len(fs)
		if len(ms) < n {
			n = len(ms)
		}
		if len(ls) < n {
			n = len(ls)
		}
		if n > 14 {
			n = 14
		}
		path := make([]Node, n)
		for i := 0; i < n; i++ {
			path[i] = Node{Freq: math.Abs(fs[i]), MissPenalty: math.Abs(ms[i]), CostLoss: math.Abs(ls[i])}
		}
		p := Optimize(path)
		if p.Gain < 0 {
			return false
		}
		// The DP must weakly dominate a handful of arbitrary subsets.
		bf := BruteForce(path)
		return p.Gain >= bf.Gain-1e-9 && p.Gain <= bf.Gain+1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGainEmptyPlacement(t *testing.T) {
	if g := Gain(randomPath(rand.New(rand.NewSource(1)), 5), nil); g != 0 {
		t.Fatalf("empty placement gain = %v, want 0", g)
	}
}

func TestClampMonotone(t *testing.T) {
	in := []Node{{Freq: 1}, {Freq: 5}, {Freq: 2}, {Freq: 3}}
	out := ClampMonotone(in)
	want := []float64{5, 5, 3, 3}
	for i, n := range out {
		if n.Freq != want[i] {
			t.Fatalf("clamped[%d].Freq = %v, want %v (full: %+v)", i, n.Freq, want[i], out)
		}
	}
	if in[0].Freq != 1 {
		t.Fatal("ClampMonotone mutated its input")
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Freq < out[i].Freq {
			t.Fatalf("not monotone at %d: %+v", i, out)
		}
	}
}

func TestClampMonotoneProperties(t *testing.T) {
	// Clamping never lowers any frequency, never touches penalties or
	// losses, is idempotent, and leaves already-monotone profiles alone.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(10)
		path := make([]Node, n)
		for i := range path {
			path[i] = Node{Freq: 10 * r.Float64(), MissPenalty: r.Float64(), CostLoss: r.Float64()}
		}
		clamped := ClampMonotone(path)
		for i := range clamped {
			if clamped[i].Freq < path[i].Freq {
				t.Fatalf("clamping lowered freq at %d: %v < %v", i, clamped[i].Freq, path[i].Freq)
			}
			if clamped[i].MissPenalty != path[i].MissPenalty || clamped[i].CostLoss != path[i].CostLoss {
				t.Fatalf("clamping modified m/l at %d", i)
			}
			if i > 0 && clamped[i-1].Freq < clamped[i].Freq {
				t.Fatalf("not monotone at %d: %+v", i, clamped)
			}
		}
		if !reflect.DeepEqual(ClampMonotone(clamped), clamped) {
			t.Fatal("ClampMonotone not idempotent")
		}
		mono := randomPath(r, n)
		if !reflect.DeepEqual(ClampMonotone(mono), mono) {
			t.Fatalf("clamping changed a monotone profile: %+v", mono)
		}
	}
}

// Package core implements the analytical heart of Tang & Chanson (ICDE
// 2003): the k-optimization problem for coordinated object placement along a
// cascaded delivery path, solved exactly by an O(n²) dynamic program.
//
// Model (paper §2.1–2.2). A request for object R is served by node A_0 (an
// upstream cache or the origin server) and travels down through intermediate
// caches A_1, …, A_n to the requesting cache A_n. For each candidate cache
// A_i:
//
//   - f_i is the access frequency of R observed at A_i (requests/second);
//     because every request passing A_i also passes A_1…A_{i-1}, the profile
//     satisfies f_1 ≥ f_2 ≥ … ≥ f_n in the idealized model;
//   - m_i is the miss penalty of R at A_i: the cost of fetching R from A_0,
//     i.e. the sum of link costs between A_0 and A_i;
//   - l_i is the cost loss of evicting enough objects from A_i to make room
//     for R (greedy knapsack by normalized cost loss, see package cache).
//
// Placing R at caches A_{v_1}, …, A_{v_r} (v_1 < … < v_r) changes the total
// access cost of all objects by
//
//	Δcost = Σ_{i=1..r} ( (f_{v_i} − f_{v_{i+1}})·m_{v_i} − l_{v_i} ),
//
// with f_{v_{r+1}} = 0. Optimize selects the subset maximizing Δcost.
package core

// Node is one candidate cache on the delivery path, ordered from the node
// nearest the serving point (index 0 in a slice corresponds to A_1) down to
// the requesting cache (A_n).
type Node struct {
	// Freq is f_i, the access frequency of the requested object observed
	// at this cache (requests per unit time). Must be ≥ 0.
	Freq float64
	// MissPenalty is m_i, the cumulative link cost between the serving
	// node A_0 and this cache. Must be ≥ 0.
	MissPenalty float64
	// CostLoss is l_i, the total cost loss of the evictions required to
	// make room for the object at this cache. Must be ≥ 0. Use +Inf to
	// exclude a node (e.g. the object cannot fit at all).
	CostLoss float64
}

// Placement is the result of solving the n-optimization problem.
type Placement struct {
	// Indices are the chosen positions into the input slice (0-based, so
	// index i corresponds to the paper's A_{i+1}), in increasing order —
	// that is, from the serving node toward the client. Empty means
	// "cache nowhere".
	Indices []int
	// Gain is the maximal Δcost achieved by Indices. Always ≥ 0: the
	// empty placement achieves 0.
	Gain float64
}

// Optimizer solves n-optimization problems without allocating per call: the
// DP tables, the backtrack buffer and the monotone-clamp scratch are owned
// by the Optimizer and reused. The zero value is ready to use. An Optimizer
// is not safe for concurrent use; give each goroutine its own (the replay
// simulator embeds one per scheme instance).
type Optimizer struct {
	opt   []float64
	best  []int
	idx   []int
	clamp []Node
}

// Optimize solves the n-optimization problem for the given path exactly,
// using the OPT_k/L_k dynamic program of paper §2.2 in O(n²) time and O(n)
// space. It returns the subset of nodes at which caching the object
// maximizes the total cost reduction, together with that reduction.
//
// The returned Placement.Indices aliases the Optimizer's scratch buffer and
// is only valid until the next Optimize call; copy it to retain it.
//
// The DP is exact for arbitrary non-negative inputs; the monotone frequency
// profile assumed by the paper's system model is not required for
// optimality of the returned subset with respect to the Δcost objective
// (Theorem 1's exchange argument is purely additive).
func (o *Optimizer) Optimize(path []Node) Placement {
	n := len(path)
	if n == 0 {
		return Placement{}
	}

	// opt[k] = OPT_k, best[k] = L_k with the paper's convention that
	// L_k = -1 when the optimal solution to the k-problem is empty.
	// Inputs are 1-indexed in the paper; path[i-1] holds (f_i, m_i, l_i).
	if cap(o.opt) < n+1 {
		o.opt = make([]float64, n+1)
		o.best = make([]int, n+1)
	}
	opt := o.opt[:n+1]
	best := o.best[:n+1]
	best[0] = -1

	for k := 1; k <= n; k++ {
		opt[k] = 0
		best[k] = -1
		fk1 := 0.0 // f_{k+1} with f_{n+1} = 0
		if k < n {
			fk1 = path[k].Freq
		}
		for i := 1; i <= k; i++ {
			ni := path[i-1]
			v := opt[i-1] + (ni.Freq-fk1)*ni.MissPenalty - ni.CostLoss
			if v > opt[k] {
				opt[k] = v
				best[k] = i
			}
		}
	}

	// Backtrack: v_r = L_n, v_{i} = L_{v_{i+1}-1}.
	rev := o.idx[:0]
	for k := best[n]; k > 0; {
		rev = append(rev, k-1) // convert to 0-based position
		k = best[k-1]
	}
	o.idx = rev
	// rev holds positions from last chosen to first; reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if len(rev) == 0 {
		return Placement{Gain: opt[n]}
	}
	return Placement{Indices: rev, Gain: opt[n]}
}

// ClampMonotone is the pooled variant of the package-level ClampMonotone:
// the non-increasing copy is written into the Optimizer's scratch buffer,
// which the next ClampMonotone call overwrites. The input is not modified.
func (o *Optimizer) ClampMonotone(path []Node) []Node {
	if cap(o.clamp) < len(path) {
		o.clamp = make([]Node, len(path))
	}
	out := o.clamp[:len(path)]
	copy(out, path)
	clampMonotone(out)
	return out
}

// Optimize solves the n-optimization problem exactly; see
// Optimizer.Optimize. This convenience wrapper allocates fresh DP tables
// per call and returns an independently owned Placement; hot paths should
// hold an Optimizer instead.
func Optimize(path []Node) Placement {
	var o Optimizer
	return o.Optimize(path)
}

// Gain evaluates the Δcost objective for an arbitrary placement (0-based,
// strictly increasing indices into path). It is exported for verification,
// testing and what-if analysis; Optimize does not call it.
func Gain(path []Node, indices []int) float64 {
	var total float64
	for i, v := range indices {
		fNext := 0.0
		if i+1 < len(indices) {
			fNext = path[indices[i+1]].Freq
		}
		nd := path[v]
		total += (nd.Freq-fNext)*nd.MissPenalty - nd.CostLoss
	}
	return total
}

// BruteForce solves the n-optimization problem by exhaustive enumeration of
// all 2^n subsets. It exists as an oracle for tests and for explanatory
// tooling; do not call it on paths longer than ~20 nodes.
func BruteForce(path []Node) Placement {
	n := len(path)
	bestGain := 0.0
	var bestSet []int
	idx := make([]int, 0, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		idx = idx[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				idx = append(idx, i)
			}
		}
		if g := Gain(path, idx); g > bestGain {
			bestGain = g
			bestSet = append([]int(nil), idx...)
		}
	}
	return Placement{Indices: bestSet, Gain: bestGain}
}

// ClampMonotone returns a copy of path whose frequency profile is
// non-increasing from index 0 (nearest the serving node) to the end, by
// raising each Freq to the maximum of all frequencies at deeper (more
// client-ward) positions. This restores the containment property
// f_1 ≥ f_2 ≥ … ≥ f_n that the system model guarantees in steady state but
// sliding-window estimation can transiently violate. The input is not
// modified.
func ClampMonotone(path []Node) []Node {
	out := append([]Node(nil), path...)
	clampMonotone(out)
	return out
}

// clampMonotone raises frequencies in place to restore the non-increasing
// profile.
func clampMonotone(out []Node) {
	for i := len(out) - 2; i >= 0; i-- {
		if out[i].Freq < out[i+1].Freq {
			out[i].Freq = out[i+1].Freq
		}
	}
}

// LocallyBeneficial reports whether caching at every chosen index is
// locally worthwhile, i.e. f_i·m_i ≥ l_i. By Theorem 2 of the paper this
// holds for every index returned by Optimize; the coordinated scheme uses
// the property to prune candidate sets (only nodes whose d-cache holds the
// object's descriptor are considered).
func LocallyBeneficial(path []Node, indices []int) bool {
	for _, v := range indices {
		nd := path[v]
		if nd.Freq*nd.MissPenalty < nd.CostLoss {
			return false
		}
	}
	return true
}

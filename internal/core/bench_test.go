package core

import (
	"fmt"
	"testing"
)

// benchPath builds a monotone path profile of the given length, shaped like
// the candidate sets the coordinated scheme produces: frequencies descend
// toward the client, penalties are per-link delays, losses are moderate.
func benchPath(n int) []Node {
	path := make([]Node, n)
	for i := range path {
		path[i] = Node{
			Freq:        float64(n-i) * 0.5,
			MissPenalty: 0.01 * float64(i+1),
			CostLoss:    0.002 * float64(i%3+1),
		}
	}
	return path
}

func BenchmarkOptimize(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			path := benchPath(n)
			var o Optimizer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Optimize(path)
			}
		})
	}
}

func BenchmarkOptimizeAlloc(b *testing.B) {
	// The package-level wrapper, for comparison with the reusable
	// Optimizer above.
	path := benchPath(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(path)
	}
}

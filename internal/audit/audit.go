// Package audit implements online invariant monitors for the coordinated
// caching protocol: lightweight checks, wired into internal/engine's
// protocol steps, that continuously verify the running system against the
// paper's analytical guarantees instead of trusting them.
//
// The monitored invariants:
//
//   - LocalBenefit (Theorem 2): every node chosen by the placement decision
//     satisfies f·m ≥ l — caching there is locally worthwhile. The DP can
//     only pick such nodes; a violation means the decision input or the DP
//     itself is corrupted.
//   - DPOptimality (§2.2): on a sampled subset of decisions with small
//     candidate vectors, the DP's gain is compared against an independent
//     exhaustive search over all 2^n placements reimplemented here (this
//     package deliberately does not import internal/core, so the oracle
//     cannot share a bug with the implementation under test).
//   - EvictionOrder (§2.3–2.4): every victim set committed by an insertion
//     is a prefix of the NCL eviction order — no victim's eviction key
//     exceeds the key of any entry retained in the store.
//   - MissPenalty (§2.3): the downstream miss-penalty counter is
//     non-negative, never decreases between caching points, and resets to
//     exactly zero where a copy is placed.
//
// Violations increment per-invariant counters in an internal/metrics
// registry (series cascade_audit_violations_total{invariant=...}) and are
// forwarded to an optional sink callback, which the wiring layers use to
// write full-context flight-recorder events — the package itself depends
// only on the standard library, internal/model and internal/metrics
// (cmd/importguard enforces this).
//
// All checks are safe for concurrent use: counters are atomic and the
// samplers use atomic state, so one Auditor can serve every node of a
// concurrent transport.
package audit

import (
	"math"
	"sync/atomic"

	"cascade/internal/metrics"
	"cascade/internal/model"
)

// Invariant identifies one monitored protocol guarantee.
type Invariant uint8

const (
	// LocalBenefit is Theorem 2's f·m ≥ l property of chosen nodes.
	LocalBenefit Invariant = iota
	// DPOptimality is the §2.2 DP-vs-exhaustive-search spot check.
	DPOptimality
	// EvictionOrder is the §2.3 NCL eviction-order property of committed
	// victim sets.
	EvictionOrder
	// MissPenalty is the §2.3 downstream counter consistency property.
	MissPenalty

	numInvariants
)

var invariantNames = [numInvariants]string{
	LocalBenefit:  "local_benefit",
	DPOptimality:  "dp_optimality",
	EvictionOrder: "eviction_order",
	MissPenalty:   "miss_penalty",
}

// String returns the metric label value of the invariant.
func (iv Invariant) String() string {
	if int(iv) < len(invariantNames) {
		return invariantNames[iv]
	}
	return "unknown"
}

// Invariants lists every monitored invariant, in label order — exported so
// smoke tests and documentation can enumerate the metric series.
func Invariants() []Invariant {
	return []Invariant{LocalBenefit, DPOptimality, EvictionOrder, MissPenalty}
}

// Violation carries the full context of one invariant failure, for the
// sink callback (flight-recorder events, test assertions, logs).
type Violation struct {
	Invariant Invariant
	Node      model.NodeID
	Obj       model.ObjectID
	Hop       int
	// Got and Want are the invariant-specific observed and required
	// values: (f·m, l) for LocalBenefit, (DP gain, brute-force gain) for
	// DPOptimality, (max victim key, min retained key) for EvictionOrder,
	// (observed counter, expected counter) for MissPenalty.
	Got, Want float64
	// Now is the protocol clock at check time.
	Now float64
}

// Tolerances. The protocol computes costs in float64; the checks must not
// fire on reassociation noise. LocalBenefit and DPOptimality compare values
// assembled by different operation orders, so they use a relative epsilon;
// EvictionOrder and MissPenalty compare values that are bit-identical by
// construction when the implementation is correct, so they are exact.
const (
	relEpsBenefit    = 1e-9
	relEpsOptimality = 1e-6
)

// Auditor evaluates the invariants and accounts the results. The zero value
// is not usable; construct with New. A nil *Auditor disables every check
// (all methods are nil-safe), so callers wire hooks unconditionally.
type Auditor struct {
	violations [numInvariants]*metrics.Counter
	checks     [numInvariants]*metrics.Counter

	onViolation atomic.Value // func(Violation)

	// DP spot-check sampling: every spotEvery-th eligible decision is
	// verified, candidate vectors longer than spotMaxN are skipped (the
	// oracle is O(2^n)).
	spotEvery uint64
	spotMaxN  int
	spotSeq   atomic.Uint64
}

// New returns an Auditor whose per-invariant counters are registered in reg
// as cascade_audit_violations_total and cascade_audit_checks_total, each
// with the caller's labels plus invariant="...". A nil reg yields a
// detached auditor: checks run and counts accumulate, but nothing is
// exported (used by the experiment engine, which reads counts directly).
func New(reg *metrics.Registry, labels ...metrics.Label) *Auditor {
	a := &Auditor{spotEvery: 64, spotMaxN: 10}
	for _, iv := range Invariants() {
		if reg == nil {
			a.violations[iv] = &metrics.Counter{}
			a.checks[iv] = &metrics.Counter{}
			continue
		}
		ls := append(append([]metrics.Label(nil), labels...), metrics.L("invariant", iv.String()))
		a.violations[iv] = reg.Counter("cascade_audit_violations_total",
			"Protocol invariant violations detected by the online auditor.", ls...)
		a.checks[iv] = reg.Counter("cascade_audit_checks_total",
			"Protocol invariant checks evaluated by the online auditor.", ls...)
	}
	return a
}

// SetOnViolation installs a sink receiving every violation with full
// context. The sink runs synchronously inside the check and must be safe
// for concurrent use on concurrent transports. A nil fn removes the sink.
func (a *Auditor) SetOnViolation(fn func(Violation)) {
	if a == nil {
		return
	}
	if fn == nil {
		fn = func(Violation) {}
	}
	a.onViolation.Store(fn)
}

// SetSpotCheck configures DP spot-check sampling: every-th eligible
// decision is verified (0 disables), candidate vectors longer than maxN are
// skipped. The defaults are every 64th decision, maxN 10.
func (a *Auditor) SetSpotCheck(every, maxN int) {
	if a == nil {
		return
	}
	if every < 0 {
		every = 0
	}
	if maxN > 16 {
		maxN = 16 // the oracle is O(2^n); callers size scratch for ≤ 16
	}
	a.spotEvery = uint64(every)
	a.spotMaxN = maxN
}

// Violations returns the violation count of one invariant. Zero on nil.
func (a *Auditor) Violations(iv Invariant) int64 {
	if a == nil {
		return 0
	}
	return a.violations[iv].Value()
}

// Checks returns the evaluated-check count of one invariant. Zero on nil.
func (a *Auditor) Checks(iv Invariant) int64 {
	if a == nil {
		return 0
	}
	return a.checks[iv].Value()
}

// TotalViolations sums the violation counters. Zero on nil.
func (a *Auditor) TotalViolations() int64 {
	if a == nil {
		return 0
	}
	var total int64
	for _, iv := range Invariants() {
		total += a.violations[iv].Value()
	}
	return total
}

func (a *Auditor) violate(v Violation) {
	a.violations[v.Invariant].Inc()
	if fn, ok := a.onViolation.Load().(func(Violation)); ok {
		fn(v)
	}
}

// CheckLocalBenefit verifies Theorem 2 on one chosen placement: the node's
// f·m must cover its eviction cost loss l. f, m and l are the values the DP
// consumed (post clamping). Nil-safe.
func (a *Auditor) CheckLocalBenefit(node model.NodeID, obj model.ObjectID, hop int, f, m, l, now float64) {
	if a == nil {
		return
	}
	a.checks[LocalBenefit].Inc()
	fm := f * m
	// Relative epsilon on the larger magnitude absorbs the DP's different
	// association order; the absolute floor covers l ≈ 0.
	tol := relEpsBenefit*math.Max(math.Abs(fm), math.Abs(l)) + 1e-12
	if fm < l-tol {
		a.violate(Violation{Invariant: LocalBenefit, Node: node, Obj: obj, Hop: hop, Got: fm, Want: l, Now: now})
	}
}

// PathPoint is one candidate of a placement decision as the DP consumed it:
// (f_i, m_i, l_i) in the paper's order, index 0 nearest the serving node.
// It mirrors the DP input without importing it, keeping the oracle
// independent.
type PathPoint struct {
	Freq        float64
	MissPenalty float64
	CostLoss    float64
}

// ShouldSpotCheck reports whether the next eligible decision with n
// candidates should be spot-checked, advancing the sampler. Nil-safe
// (false).
func (a *Auditor) ShouldSpotCheck(n int) bool {
	if a == nil || a.spotEvery == 0 || n == 0 || n > a.spotMaxN {
		return false
	}
	return a.spotSeq.Add(1)%a.spotEvery == 0
}

// SpotCheckDP verifies one decision against the exhaustive-search oracle:
// the DP's gain must match the best gain over all 2^n placements of path.
// Call only when ShouldSpotCheck granted the sample; path must be ≤ the
// configured maxN (the oracle is exponential). Nil-safe.
func (a *Auditor) SpotCheckDP(node model.NodeID, obj model.ObjectID, path []PathPoint, dpGain, now float64) {
	if a == nil || len(path) == 0 {
		return
	}
	a.checks[DPOptimality].Inc()
	best := bruteForceGain(path)
	tol := relEpsOptimality*math.Max(math.Abs(best), math.Abs(dpGain)) + 1e-12
	if math.Abs(best-dpGain) > tol {
		a.violate(Violation{Invariant: DPOptimality, Node: node, Obj: obj, Hop: -1, Got: dpGain, Want: best, Now: now})
	}
}

// bruteForceGain maximizes the §2.1 objective
//
//	Δcost = Σ_{i=1..r} ((f_{v_i} − f_{v_{i+1}})·m_{v_i} − l_{v_i}),
//	f_{v_{r+1}} = 0
//
// over all subsets v_1 < … < v_r of path, the empty subset scoring 0. It is
// an independent reimplementation of the objective internal/core optimizes;
// sharing code would let one bug hide the other.
func bruteForceGain(path []PathPoint) float64 {
	n := len(path)
	best := 0.0
	for mask := 1; mask < 1<<uint(n); mask++ {
		gain := 0.0
		fNext := 0.0 // frequency of the next chosen node, scanning client→server
		for i := n - 1; i >= 0; i-- {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			gain += (path[i].Freq-fNext)*path[i].MissPenalty - path[i].CostLoss
			fNext = path[i].Freq
		}
		if gain > best {
			best = gain
		}
	}
	return best
}

// CheckEvictionOrder verifies the §2.3 NCL property of one committed victim
// set: the largest eviction key among the victims must not exceed the
// smallest key among the entries the store retained. Both keys are the
// store's own cached values at commit time, so the comparison is exact —
// the lazy re-key machinery guarantees equality of cached and effective
// keys at selection. Nil-safe.
func (a *Auditor) CheckEvictionOrder(node model.NodeID, obj model.ObjectID, maxVictimKey, minRetainedKey, now float64) {
	if a == nil {
		return
	}
	a.checks[EvictionOrder].Inc()
	if maxVictimKey > minRetainedKey {
		a.violate(Violation{Invariant: EvictionOrder, Node: node, Obj: obj, Hop: -1, Got: maxVictimKey, Want: minRetainedKey, Now: now})
	}
}

// CheckPenaltyStep verifies the §2.3 downstream counter at one hop: prev is
// the counter leaving the previous (server-side) caching point, incoming the
// value handed to this node's DownStep (prev plus the link costs crossed),
// outgoing the value DownStep returned, placed whether a copy was placed
// here. The counter must be non-negative, non-decreasing between caching
// points, reset to exactly zero at a placement, and pass through unchanged
// otherwise. Nil-safe.
func (a *Auditor) CheckPenaltyStep(node model.NodeID, obj model.ObjectID, hop int, prev, incoming, outgoing float64, placed bool) {
	if a == nil {
		return
	}
	a.checks[MissPenalty].Inc()
	switch {
	case prev < 0 || incoming < 0 || outgoing < 0:
		a.violate(Violation{Invariant: MissPenalty, Node: node, Obj: obj, Hop: hop, Got: math.Min(math.Min(prev, incoming), outgoing), Want: 0})
	case incoming < prev:
		a.violate(Violation{Invariant: MissPenalty, Node: node, Obj: obj, Hop: hop, Got: incoming, Want: prev})
	case placed && outgoing != 0:
		a.violate(Violation{Invariant: MissPenalty, Node: node, Obj: obj, Hop: hop, Got: outgoing, Want: 0})
	case !placed && outgoing != incoming:
		a.violate(Violation{Invariant: MissPenalty, Node: node, Obj: obj, Hop: hop, Got: outgoing, Want: incoming})
	}
}

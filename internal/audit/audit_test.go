package audit

import (
	"strings"
	"testing"

	"cascade/internal/metrics"
)

func TestCheckLocalBenefit(t *testing.T) {
	a := New(nil)
	// Clearly beneficial: f·m = 0.5·10 = 5 ≥ l = 1.
	a.CheckLocalBenefit(1, 7, 0, 0.5, 10, 1, 0)
	if a.Violations(LocalBenefit) != 0 || a.Checks(LocalBenefit) != 1 {
		t.Fatalf("benefit check miscounted: v=%d c=%d", a.Violations(LocalBenefit), a.Checks(LocalBenefit))
	}
	// Clearly violating: f·m = 0.1·1 < l = 5.
	var got Violation
	a.SetOnViolation(func(v Violation) { got = v })
	a.CheckLocalBenefit(2, 9, 3, 0.1, 1, 5, 42)
	if a.Violations(LocalBenefit) != 1 {
		t.Fatal("violation not counted")
	}
	if got.Invariant != LocalBenefit || got.Node != 2 || got.Obj != 9 || got.Hop != 3 ||
		got.Got != 0.1 || got.Want != 5 || got.Now != 42 {
		t.Fatalf("sink context = %+v", got)
	}
	// Reassociation noise within the relative epsilon must not fire.
	fm := 0.3 * 7.0
	a.CheckLocalBenefit(1, 7, 0, 0.3, 7, fm*(1+1e-12), 0)
	if a.Violations(LocalBenefit) != 1 {
		t.Fatal("epsilon-scale difference fired the check")
	}
}

func TestBruteForceGain(t *testing.T) {
	// Hand-computed: two candidates, index 0 nearest the serving node.
	//   path[0]: f=2, m=3, l=1    path[1]: f=1, m=5, l=2
	// Subsets (client→server scan, f_next of deepest chosen is 0):
	//   {0}:    (2−0)·3 − 1                  = 5
	//   {1}:    (1−0)·5 − 2                  = 3
	//   {0,1}:  (1−0)·5 − 2 + (2−1)·3 − 1   = 5
	// Best = 5.
	path := []PathPoint{{Freq: 2, MissPenalty: 3, CostLoss: 1}, {Freq: 1, MissPenalty: 5, CostLoss: 2}}
	if got := bruteForceGain(path); got != 5 {
		t.Fatalf("bruteForceGain = %g, want 5", got)
	}
	// All placements losing: the empty subset's 0 wins.
	lossy := []PathPoint{{Freq: 0.1, MissPenalty: 1, CostLoss: 10}}
	if got := bruteForceGain(lossy); got != 0 {
		t.Fatalf("bruteForceGain = %g, want 0", got)
	}
}

func TestSpotCheckDP(t *testing.T) {
	a := New(nil)
	path := []PathPoint{{Freq: 2, MissPenalty: 3, CostLoss: 1}, {Freq: 1, MissPenalty: 5, CostLoss: 2}}
	a.SpotCheckDP(0, 1, path, 5, 0) // matches the oracle
	if a.Violations(DPOptimality) != 0 || a.Checks(DPOptimality) != 1 {
		t.Fatalf("matching DP flagged: v=%d", a.Violations(DPOptimality))
	}
	a.SpotCheckDP(0, 1, path, 4.5, 0) // sub-optimal claim
	if a.Violations(DPOptimality) != 1 {
		t.Fatal("sub-optimal DP gain not flagged")
	}
}

func TestShouldSpotCheckSampling(t *testing.T) {
	a := New(nil)
	a.SetSpotCheck(4, 10)
	granted := 0
	for i := 0; i < 100; i++ {
		if a.ShouldSpotCheck(5) {
			granted++
		}
	}
	if granted != 25 {
		t.Fatalf("granted %d of 100 at every=4", granted)
	}
	// Oversized vectors and a zero rate never sample.
	if a.ShouldSpotCheck(11) {
		t.Fatal("sampled a vector past maxN")
	}
	a.SetSpotCheck(0, 10)
	if a.ShouldSpotCheck(5) {
		t.Fatal("sampled with sampling disabled")
	}
}

func TestCheckEvictionOrder(t *testing.T) {
	a := New(nil)
	a.CheckEvictionOrder(0, 1, 2.0, 2.0, 0) // boundary: equal keys are legal
	a.CheckEvictionOrder(0, 1, 1.0, 3.0, 0)
	if a.Violations(EvictionOrder) != 0 {
		t.Fatal("legal victim sets flagged")
	}
	a.CheckEvictionOrder(0, 1, 3.0, 2.0, 0) // victim outranks a retained entry
	if a.Violations(EvictionOrder) != 1 {
		t.Fatal("out-of-order eviction not flagged")
	}
}

func TestCheckPenaltyStep(t *testing.T) {
	cases := []struct {
		name                     string
		prev, incoming, outgoing float64
		placed                   bool
		bad                      bool
	}{
		{"pass-through", 1, 3, 3, false, false},
		{"reset at placement", 1, 3, 0, true, false},
		{"negative counter", -1, 3, 3, false, true},
		{"counter decreased", 3, 1, 1, false, true},
		{"placement without reset", 1, 3, 3, true, true},
		{"mutated pass-through", 1, 3, 4, false, true},
	}
	for _, tc := range cases {
		a := New(nil)
		a.CheckPenaltyStep(0, 1, 0, tc.prev, tc.incoming, tc.outgoing, tc.placed)
		if got := a.Violations(MissPenalty) != 0; got != tc.bad {
			t.Errorf("%s: violation=%v want %v", tc.name, got, tc.bad)
		}
	}
}

func TestNilAuditorSafe(t *testing.T) {
	var a *Auditor
	a.SetOnViolation(func(Violation) { t.Fatal("sink on nil auditor") })
	a.SetSpotCheck(1, 4)
	a.CheckLocalBenefit(0, 1, 0, 0, 1, 5, 0)
	a.SpotCheckDP(0, 1, []PathPoint{{Freq: 1, MissPenalty: 1}}, -1, 0)
	a.CheckEvictionOrder(0, 1, 5, 1, 0)
	a.CheckPenaltyStep(0, 1, 0, -1, -1, -1, false)
	if a.ShouldSpotCheck(1) {
		t.Fatal("nil auditor granted a spot check")
	}
	if a.TotalViolations() != 0 || a.Checks(LocalBenefit) != 0 {
		t.Fatal("nil auditor reported counts")
	}
}

func TestRegisteredSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	a := New(reg, metrics.L("node", "3"))
	a.CheckLocalBenefit(3, 1, 0, 0.1, 1, 5, 0) // one violation

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cascade_audit_checks_total{node="3",invariant="local_benefit"} 1`,
		`cascade_audit_violations_total{node="3",invariant="local_benefit"} 1`,
		`cascade_audit_violations_total{node="3",invariant="dp_optimality"} 0`,
		`cascade_audit_violations_total{node="3",invariant="eviction_order"} 0`,
		`cascade_audit_violations_total{node="3",invariant="miss_penalty"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	l.RecordPrediction(1, 2.5)
	l.RecordPrediction(1, 1.5)
	l.RecordPlacement(1, true)
	l.RecordPlacement(1, false)
	l.RecordHit(1, 3)
	l.RecordHit(2, 7)

	acc := l.Node(1)
	if acc.PredictedGain != 4 || acc.Predictions != 2 || acc.Placements != 1 ||
		acc.PlaceFailures != 1 || acc.RealizedSavings != 3 || acc.Hits != 1 {
		t.Fatalf("node 1 account = %+v", acc)
	}
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Node != 1 || snap[1].Node != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	tot := l.Totals()
	if tot.RealizedSavings != 10 || tot.Hits != 2 || tot.Predictions != 2 {
		t.Fatalf("totals = %+v", tot)
	}
	if unseen := l.Node(9); unseen.Node != 9 || unseen.Hits != 0 {
		t.Fatalf("unseen node account = %+v", unseen)
	}

	var nilL *Ledger
	nilL.RecordPrediction(1, 1)
	nilL.RecordPlacement(1, true)
	nilL.RecordHit(1, 1)
	if nilL.Snapshot() != nil || nilL.Totals().Hits != 0 {
		t.Fatal("nil ledger reported state")
	}
}

func TestLedgerRegisteredSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	l := NewLedger()
	l.RegisterNode(reg, 0, metrics.L("node", "0"))
	l.RecordPrediction(0, 1.25)
	l.RecordPlacement(0, true)
	l.RecordHit(0, 2.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`cascade_ledger_predicted_gain{node="0"} 1.25`,
		`cascade_ledger_realized_savings{node="0"} 2.5`,
		`cascade_ledger_placements_total{node="0"} 1`,
		`cascade_ledger_place_failures_total{node="0"} 0`,
		`cascade_ledger_hits_total{node="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
}

func TestInvariantNames(t *testing.T) {
	seen := map[string]bool{}
	for _, iv := range Invariants() {
		name := iv.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("invariant %d has bad or duplicate label %q", iv, name)
		}
		seen[name] = true
	}
	if Invariant(200).String() != "unknown" {
		t.Fatal("out-of-range invariant label")
	}
}

func TestSpotCheckTolerance(t *testing.T) {
	a := New(nil)
	path := []PathPoint{{Freq: 1e6, MissPenalty: 1e3, CostLoss: 1}}
	best := bruteForceGain(path)
	// A relative wobble far under the epsilon must pass.
	a.SpotCheckDP(0, 1, path, best*(1+1e-9), 0)
	if a.Violations(DPOptimality) != 0 {
		t.Fatal("relative tolerance too tight")
	}
	// A real gap at the same magnitude must fail.
	a.SpotCheckDP(0, 1, path, best*(1-1e-3), 0)
	if a.Violations(DPOptimality) != 1 {
		t.Fatal("real optimality gap not flagged")
	}
}

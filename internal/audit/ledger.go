package audit

import (
	"sort"
	"sync"

	"cascade/internal/metrics"
	"cascade/internal/model"
)

// Ledger is the predicted-vs-realized cost accounting of the placement
// protocol. At decision time the DP claims each accepted placement will
// reduce the total access cost by its Δcost term
// (f_i − f_{i+1})·m_i − l_i (§2.1); the ledger records that claim against
// what actually happens: every later hit at the placed copy avoids the
// copy's miss penalty, and those avoided penalties accumulate as realized
// savings.
//
// Dimensional note: the predicted side is a cost *rate* (frequencies are
// requests/second, so the term is cost per second), while the realized side
// is an accumulated cost over the observation window. The two are not
// directly comparable as absolute numbers; the ledger reports both so drift
// *trends* between the analytical model and observed behaviour are visible
// (a placement whose predictions grow while its realizations stay flat is
// mispredicted). docs/OBSERVABILITY.md discusses reading them together.
//
// A nil *Ledger disables all accounting (methods are nil-safe). A Ledger is
// safe for concurrent use.
type Ledger struct {
	mu    sync.Mutex
	nodes map[model.NodeID]*NodeAccount
}

// NodeAccount is one node's accumulated ledger state.
type NodeAccount struct {
	Node model.NodeID `json:"node"`
	// PredictedGain sums the DP's Δcost terms for placements accepted at
	// this node (a cost rate, see the Ledger dimensional note).
	PredictedGain float64 `json:"predicted_gain"`
	// RealizedSavings sums the avoided miss penalties of hits served by
	// copies at this node (an accumulated cost).
	RealizedSavings float64 `json:"realized_savings"`
	// Predictions counts placement instructions accepted for this node.
	Predictions int64 `json:"predictions"`
	// Placements counts instructed placements that succeeded at apply
	// time; PlaceFailures counts those the store rejected.
	Placements    int64 `json:"placements"`
	PlaceFailures int64 `json:"place_failures"`
	// Hits counts the cache hits behind RealizedSavings.
	Hits int64 `json:"hits"`
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{nodes: make(map[model.NodeID]*NodeAccount)}
}

func (l *Ledger) account(node model.NodeID) *NodeAccount {
	acc, ok := l.nodes[node]
	if !ok {
		acc = &NodeAccount{Node: node}
		l.nodes[node] = acc
	}
	return acc
}

// RecordPrediction books the DP's predicted Δcost term for one accepted
// placement at node. Nil-safe.
func (l *Ledger) RecordPrediction(node model.NodeID, term float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	acc := l.account(node)
	acc.PredictedGain += term
	acc.Predictions++
	l.mu.Unlock()
}

// RecordPlacement books the apply-time outcome of one instructed placement.
// Nil-safe.
func (l *Ledger) RecordPlacement(node model.NodeID, ok bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	acc := l.account(node)
	if ok {
		acc.Placements++
	} else {
		acc.PlaceFailures++
	}
	l.mu.Unlock()
}

// RecordHit books one hit served by a cached copy at node, avoiding the
// copy's current miss penalty. Nil-safe.
func (l *Ledger) RecordHit(node model.NodeID, avoidedPenalty float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	acc := l.account(node)
	acc.RealizedSavings += avoidedPenalty
	acc.Hits++
	l.mu.Unlock()
}

// Node returns a copy of one node's account (zero value if unseen).
// Nil-safe.
func (l *Ledger) Node(node model.NodeID) NodeAccount {
	if l == nil {
		return NodeAccount{Node: node}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if acc, ok := l.nodes[node]; ok {
		return *acc
	}
	return NodeAccount{Node: node}
}

// Snapshot returns a copy of every node's account, sorted by node ID.
// Nil-safe (nil slice).
func (l *Ledger) Snapshot() []NodeAccount {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]NodeAccount, 0, len(l.nodes))
	for _, acc := range l.nodes {
		out = append(out, *acc)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Totals sums every node's account (Node is model.NoNode). Nil-safe.
func (l *Ledger) Totals() NodeAccount {
	t := NodeAccount{Node: model.NoNode}
	if l == nil {
		return t
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, acc := range l.nodes {
		t.PredictedGain += acc.PredictedGain
		t.RealizedSavings += acc.RealizedSavings
		t.Predictions += acc.Predictions
		t.Placements += acc.Placements
		t.PlaceFailures += acc.PlaceFailures
		t.Hits += acc.Hits
	}
	return t
}

// RegisterNode exports one node's ledger state as scrape-time gauges in
// reg, labelled with the caller's labels: cascade_ledger_predicted_gain,
// cascade_ledger_realized_savings, cascade_ledger_placements_total,
// cascade_ledger_place_failures_total and cascade_ledger_hits_total.
// Nil-safe on the ledger.
func (l *Ledger) RegisterNode(reg *metrics.Registry, node model.NodeID, labels ...metrics.Label) {
	if l == nil || reg == nil {
		return
	}
	reg.GaugeFunc("cascade_ledger_predicted_gain",
		"DP-predicted cost-reduction rate booked for accepted placements at the node.",
		func() float64 { return l.Node(node).PredictedGain }, labels...)
	reg.GaugeFunc("cascade_ledger_realized_savings",
		"Accumulated cost avoided by hits at copies placed at the node.",
		func() float64 { return l.Node(node).RealizedSavings }, labels...)
	reg.CounterFunc("cascade_ledger_placements_total",
		"Instructed placements that succeeded at apply time at the node.",
		func() float64 { return float64(l.Node(node).Placements) }, labels...)
	reg.CounterFunc("cascade_ledger_place_failures_total",
		"Instructed placements the node's store rejected at apply time.",
		func() float64 { return float64(l.Node(node).PlaceFailures) }, labels...)
	reg.CounterFunc("cascade_ledger_hits_total",
		"Hits accounted into the node's realized savings.",
		func() float64 { return float64(l.Node(node).Hits) }, labels...)
}

package controlplane

import (
	"sync"
	"sync/atomic"
)

// epochRing is the number of per-epoch entry counters the guard cycles
// through. Epochs e and e+epochRing share a counter, so the guard's
// exactness requires that no single request stay in flight across
// epochRing routing transitions — transitions are operator- or
// checker-driven (a handful per reconfiguration) and every request
// carries a deadline, so the bound holds by orders of magnitude. Sharing
// in the other direction (a waiter seeing newer entries in an aliased
// slot) only over-waits, never under-waits.
const epochRing = 1024

// EpochGuard fences in-flight requests across routing-view changes. A
// request Enters the current epoch before resolving its route and Exits
// when done; a reconfiguration Bumps the epoch (so new requests see the
// new view) and WaitBefores the bumped value, blocking until every request
// that entered under an older view has finished. The drained node can then
// spill its state and depart knowing no request still holds a route
// through it.
//
// The guard counts per-epoch entries rather than using a single WaitGroup
// so a steady stream of new requests (which enter newer epochs) never
// delays the reconfiguration — only the requests that actually started on
// the old view are waited for. Enter and Exit are the per-request hot
// path and are lock-free (one atomic load + one atomic add); the mutex
// and condition variable serve only reconfiguration-time waiters.
//
// An Enter racing a Bump may land its count in the old epoch after a
// waiter's scan passed it — that request has, by construction, not yet
// resolved a route, so it observes the post-Bump view and the waiter's
// guarantee ("no request still holds a route through the old view")
// stands.
type EpochGuard struct {
	epoch  atomic.Uint64
	counts [epochRing]atomic.Int64 // open entries per epoch, modulo the ring

	mu      sync.Mutex // serializes waiters only
	cond    *sync.Cond
	waiters atomic.Int32 // lets Exit skip the wake-up path when nobody waits
}

// NewEpochGuard returns a guard at epoch 0.
func NewEpochGuard() *EpochGuard {
	g := &EpochGuard{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Enter registers an in-flight request under the current epoch and returns
// that epoch for the matching Exit.
func (g *EpochGuard) Enter() uint64 {
	e := g.epoch.Load()
	g.counts[e%epochRing].Add(1)
	return e
}

// Exit unregisters a request previously Entered at epoch e.
func (g *EpochGuard) Exit(e uint64) {
	if g.counts[e%epochRing].Add(-1) == 0 && g.waiters.Load() > 0 {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// Bump advances the epoch — subsequent Enters land in the new one — and
// returns the new value.
func (g *EpochGuard) Bump() uint64 {
	return g.epoch.Add(1)
}

// Epoch returns the current epoch.
func (g *EpochGuard) Epoch() uint64 {
	return g.epoch.Load()
}

// WaitBefore blocks until no request entered at an epoch < e remains in
// flight. Requests entering at or after e are not waited for (modulo ring
// aliasing, which can only extend the wait).
func (g *EpochGuard) WaitBefore(e uint64) {
	g.waiters.Add(1)
	g.mu.Lock()
	for g.openBefore(e) {
		g.cond.Wait()
	}
	g.mu.Unlock()
	g.waiters.Add(-1)
}

// openBefore reports whether any slot belonging to an epoch < e still has
// open entries. It scans every ring slot except e's own, so entries from
// the ring's worth of epochs before e are all covered.
func (g *EpochGuard) openBefore(e uint64) bool {
	lo := uint64(0)
	if e > epochRing-1 {
		lo = e - (epochRing - 1)
	}
	for ep := lo; ep < e; ep++ {
		if g.counts[ep%epochRing].Load() > 0 {
			return true
		}
	}
	return false
}

package controlplane

import (
	"sync"
	"time"

	"cascade/internal/model"
)

// CheckerConfig parameterizes an active health checker.
type CheckerConfig struct {
	// Probe reports whether the node answered its health probe. Required.
	Probe func(id model.NodeID) bool
	// FailureThreshold is how many consecutive probe failures mark a node
	// Down (default 3). The first failure already marks it Suspect.
	FailureThreshold int
	// SuccessThreshold is how many consecutive probe successes return a
	// Suspect or Down node to Healthy (default 2).
	SuccessThreshold int
	// Interval is the probe period for Run (default 1s). Tick ignores it.
	Interval time.Duration
}

// Checker is the active health prober: a periodic probe per node with
// consecutive failure/success thresholds driving the
// healthy → suspect → down state machine in a Manager. It is the active
// counterpart of the gateways' passive circuit breaker — the breaker
// reacts to real traffic failing, the checker detects sickness before (or
// without) traffic.
//
// Tests drive it deterministically with Tick; deployments start the
// background loop with Run.
type Checker struct {
	cfg CheckerConfig
	mgr *Manager

	mu    sync.Mutex
	fails []int
	oks   []int
}

// NewChecker returns a checker feeding the manager. The checker probes
// every node the manager knows; nodes not currently Active are skipped (a
// drained node is not sick, it is gone).
func NewChecker(mgr *Manager, cfg CheckerConfig) *Checker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.SuccessThreshold <= 0 {
		cfg.SuccessThreshold = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	n := mgr.Len()
	return &Checker{cfg: cfg, mgr: mgr, fails: make([]int, n), oks: make([]int, n)}
}

// Tick probes every Active node once and applies the threshold state
// machine: any failure marks a Healthy node Suspect immediately,
// FailureThreshold consecutive failures mark it Down, SuccessThreshold
// consecutive successes return it to Healthy.
func (c *Checker) Tick() {
	n := c.mgr.Len()
	for i := 0; i < n; i++ {
		id := model.NodeID(i)
		if c.mgr.StateOf(id) != Active {
			c.mu.Lock()
			c.fails[i], c.oks[i] = 0, 0
			c.mu.Unlock()
			continue
		}
		ok := c.cfg.Probe(id)
		c.mu.Lock()
		if ok {
			c.oks[i]++
			c.fails[i] = 0
			oks := c.oks[i]
			c.mu.Unlock()
			if oks >= c.cfg.SuccessThreshold {
				c.mgr.SetHealth(id, Healthy)
			}
			continue
		}
		c.fails[i]++
		c.oks[i] = 0
		fails := c.fails[i]
		c.mu.Unlock()
		if fails >= c.cfg.FailureThreshold {
			c.mgr.SetHealth(id, Down)
		} else if c.mgr.HealthOf(id) == Healthy {
			c.mgr.SetHealth(id, Suspect)
		}
	}
}

// Run ticks every Interval until stop is closed. Call in a goroutine.
func (c *Checker) Run(stop <-chan struct{}) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.Tick()
		}
	}
}

// Package controlplane manages the membership and health of a cascade's
// cache nodes at runtime. The paper's coordinated placement (§2.2–2.4)
// assumes a fixed set of caches; this package makes the set a living object
// without touching the protocol: a membership Manager admits, drains and
// removes nodes, an active HealthChecker (distinct from any passive
// circuit breaker) transitions nodes healthy → suspect → down on probe
// evidence, and an EpochGuard lets in-flight requests finish on the
// routing view they started with while new requests pick up the changed
// membership.
//
// The package is transport-agnostic: the actor cluster (internal/runtime)
// and the HTTP gateway (internal/httpgw) both consult the same Manager
// surface, so a drained node behaves identically whichever transport hosts
// it — it stops offering placement candidacy, spills its descriptors to
// its parent, and departs. cmd/importguard pins the dependency surface to
// the standard library plus internal/model, internal/metrics and
// internal/topology.
package controlplane

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"cascade/internal/metrics"
	"cascade/internal/model"
)

// MemberState is a node's membership position in the cascade.
type MemberState uint8

const (
	// Active: the node participates fully — it is routable (subject to
	// health) and offers placement candidacy.
	Active MemberState = iota
	// Draining: the node is leaving cooperatively. It finishes requests
	// already routed through it but offers no candidacy and takes no new
	// copies; new requests route around it.
	Draining
	// Removed: the node has departed. It holds no state and is not
	// routable; Admit returns it to Active.
	Removed
)

func (s MemberState) String() string {
	switch s {
	case Draining:
		return "draining"
	case Removed:
		return "removed"
	default:
		return "active"
	}
}

// Health is a node's probe-driven health classification.
type Health uint8

const (
	// Healthy: probes succeed; the node is routable.
	Healthy Health = iota
	// Suspect: at least one probe failed but the failure threshold has
	// not been crossed. Still routable — the passive failure machinery
	// (route-around, deadline) covers the window.
	Suspect
	// Down: consecutive probe failures crossed the threshold. Not
	// routable until probes succeed again.
	Down
)

func (h Health) String() string {
	switch h {
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return "healthy"
	}
}

// EventKind classifies a membership or health transition.
type EventKind uint8

// Membership and health transition kinds, in the order they are counted by
// the cascade_membership_changes_total metric's event label.
const (
	EventAdmit EventKind = iota
	EventDrain
	EventRemove
	EventHealthChange
	numEvents
)

var eventNames = [numEvents]string{"admit", "drain", "remove", "health"}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one membership or health transition, delivered to the Manager's
// OnEvent hook (for flight recorders and logs).
type Event struct {
	Kind   EventKind
	Node   model.NodeID
	Member MemberState // state after the transition
	Health Health      // health after the transition
	Epoch  uint64      // routing epoch after the transition
}

// Manager tracks the membership and health of a fixed ID space of nodes
// [0, n) and derives the routing predicate from both: a node is routable
// when it is Active and not Down. Every transition bumps the routing epoch,
// so transports can fence in-flight work with an EpochGuard.
//
// All methods are safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	member  []MemberState
	health  []Health
	epoch   uint64
	onEvent func(Event)

	// routable mirrors member/health as one atomic flag per node, so the
	// per-hop routing predicate never touches the lock. Updated inside
	// every transition while m.mu is held.
	routable []atomic.Bool

	changes [numEvents]*metrics.Counter
}

// NewManager returns a manager over node IDs [0, n), all Active and
// Healthy.
func NewManager(n int) *Manager {
	m := &Manager{
		member:   make([]MemberState, n),
		health:   make([]Health, n),
		routable: make([]atomic.Bool, n),
	}
	for i := range m.routable {
		m.routable[i].Store(true)
	}
	return m
}

// SetOnEvent installs the transition hook (nil disables). Call before the
// manager is shared; the hook runs outside the manager's lock.
func (m *Manager) SetOnEvent(fn func(Event)) { m.onEvent = fn }

// RegisterMetrics exports the manager's state through reg:
// cascade_node_health{node} (0=healthy, 1=suspect, 2=down) and
// cascade_membership_changes_total{event}.
func (m *Manager) RegisterMetrics(reg *metrics.Registry) {
	for k := EventKind(0); k < numEvents; k++ {
		m.changes[k] = reg.Counter("cascade_membership_changes_total",
			"Membership and health transitions applied by the control plane.",
			metrics.L("event", k.String()))
	}
	m.mu.Lock()
	n := len(m.member)
	m.mu.Unlock()
	for i := 0; i < n; i++ {
		id := model.NodeID(i)
		reg.GaugeFunc("cascade_node_health",
			"Probe-driven node health (0=healthy, 1=suspect, 2=down).",
			func() float64 { return float64(m.HealthOf(id)) },
			metrics.L("node", strconv.Itoa(i)))
	}
}

// Len returns the size of the managed ID space.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.member)
}

// Epoch returns the current routing epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// StateOf returns a node's membership state (Removed for unknown IDs).
func (m *Manager) StateOf(id model.NodeID) MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) < 0 || int(id) >= len(m.member) {
		return Removed
	}
	return m.member[id]
}

// HealthOf returns a node's health (Down for unknown IDs).
func (m *Manager) HealthOf(id model.NodeID) Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) < 0 || int(id) >= len(m.health) {
		return Down
	}
	return m.health[id]
}

// Routable reports whether new requests may be routed through the node:
// Active membership and not probed Down. Suspect stays routable — the
// passive failure machinery covers the window until the checker decides.
// The check is one atomic load — it runs per hop on every request.
func (m *Manager) Routable(id model.NodeID) bool {
	if int(id) < 0 || int(id) >= len(m.routable) {
		return false
	}
	return m.routable[id].Load()
}

// emitLocked counts and snapshots a transition; the caller must hold m.mu
// and fire the returned event (if any) after unlocking.
func (m *Manager) emitLocked(k EventKind, id model.NodeID) (Event, bool) {
	m.routable[id].Store(m.member[id] == Active && m.health[id] != Down)
	m.epoch++
	if c := m.changes[k]; c != nil {
		c.Inc()
	}
	if m.onEvent == nil {
		return Event{}, false
	}
	return Event{Kind: k, Node: id, Member: m.member[id], Health: m.health[id], Epoch: m.epoch}, true
}

// Admit (re)activates a node: Removed or Draining → Active. It reports
// whether a transition happened (false when already Active or unknown).
func (m *Manager) Admit(id model.NodeID) bool {
	m.mu.Lock()
	if int(id) < 0 || int(id) >= len(m.member) || m.member[id] == Active {
		m.mu.Unlock()
		return false
	}
	m.member[id] = Active
	m.health[id] = Healthy
	ev, fire := m.emitLocked(EventAdmit, id)
	m.mu.Unlock()
	if fire {
		m.onEvent(ev)
	}
	return true
}

// StartDrain moves an Active node to Draining: it leaves the routing view
// (the epoch bumps) but keeps serving requests already routed through it.
// Reports whether a transition happened.
func (m *Manager) StartDrain(id model.NodeID) bool {
	m.mu.Lock()
	if int(id) < 0 || int(id) >= len(m.member) || m.member[id] != Active {
		m.mu.Unlock()
		return false
	}
	m.member[id] = Draining
	ev, fire := m.emitLocked(EventDrain, id)
	m.mu.Unlock()
	if fire {
		m.onEvent(ev)
	}
	return true
}

// FinishDrain completes a drain: Draining → Removed. Reports whether a
// transition happened.
func (m *Manager) FinishDrain(id model.NodeID) bool {
	m.mu.Lock()
	if int(id) < 0 || int(id) >= len(m.member) || m.member[id] != Draining {
		m.mu.Unlock()
		return false
	}
	m.member[id] = Removed
	ev, fire := m.emitLocked(EventRemove, id)
	m.mu.Unlock()
	if fire {
		m.onEvent(ev)
	}
	return true
}

// SetHealth records a node's health classification (typically from a
// HealthChecker, or an operator override). Reports whether the value
// changed; only changes bump the epoch.
func (m *Manager) SetHealth(id model.NodeID, h Health) bool {
	m.mu.Lock()
	if int(id) < 0 || int(id) >= len(m.health) || m.health[id] == h {
		m.mu.Unlock()
		return false
	}
	m.health[id] = h
	ev, fire := m.emitLocked(EventHealthChange, id)
	m.mu.Unlock()
	if fire {
		m.onEvent(ev)
	}
	return true
}

// Members lists the node IDs currently in the given membership state,
// sorted ascending. The slice is non-nil even when empty, so callers can
// range and serialize it without nil checks.
func (m *Manager) Members(s MemberState) []model.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]model.NodeID, 0)
	for i, st := range m.member {
		if st == s {
			out = append(out, model.NodeID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParseHealth resolves a health name ("healthy", "suspect", "down") — the
// admin endpoints' wire form.
func ParseHealth(s string) (Health, error) {
	switch s {
	case "healthy":
		return Healthy, nil
	case "suspect":
		return Suspect, nil
	case "down":
		return Down, nil
	}
	return Healthy, fmt.Errorf("controlplane: unknown health state %q", s)
}

package controlplane

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cascade/internal/metrics"
	"cascade/internal/model"
)

func TestMembershipTransitions(t *testing.T) {
	m := NewManager(3)
	if !m.Routable(0) || !m.Routable(2) {
		t.Fatal("fresh manager: all nodes should be routable")
	}
	if m.Routable(3) || m.Routable(-1) {
		t.Fatal("out-of-range IDs must not be routable")
	}

	if !m.StartDrain(1) {
		t.Fatal("StartDrain on an active node should transition")
	}
	if m.StartDrain(1) {
		t.Fatal("StartDrain is not idempotent-true")
	}
	if m.Routable(1) {
		t.Fatal("draining node must leave the routing view")
	}
	if got := m.StateOf(1); got != Draining {
		t.Fatalf("state = %v, want draining", got)
	}

	if !m.FinishDrain(1) || m.FinishDrain(1) {
		t.Fatal("FinishDrain should transition exactly once")
	}
	if got := m.StateOf(1); got != Removed {
		t.Fatalf("state = %v, want removed", got)
	}

	if !m.Admit(1) {
		t.Fatal("Admit on a removed node should transition")
	}
	if m.Admit(1) {
		t.Fatal("Admit on an active node should be a no-op")
	}
	if !m.Routable(1) {
		t.Fatal("admitted node should be routable again")
	}
}

func TestEpochBumpsOnEveryTransition(t *testing.T) {
	m := NewManager(2)
	e0 := m.Epoch()
	m.StartDrain(0)
	m.FinishDrain(0)
	m.Admit(0)
	m.SetHealth(1, Down)
	m.SetHealth(1, Down) // unchanged: no bump
	if got, want := m.Epoch(), e0+4; got != want {
		t.Fatalf("epoch = %d, want %d", got, want)
	}
}

func TestHealthGatesRouting(t *testing.T) {
	m := NewManager(2)
	m.SetHealth(0, Suspect)
	if !m.Routable(0) {
		t.Fatal("suspect node must stay routable")
	}
	m.SetHealth(0, Down)
	if m.Routable(0) {
		t.Fatal("down node must not be routable")
	}
	m.SetHealth(0, Healthy)
	if !m.Routable(0) {
		t.Fatal("healthy node must be routable")
	}
}

func TestMembersSortedNonNil(t *testing.T) {
	m := NewManager(4)
	if got := m.Members(Draining); got == nil || len(got) != 0 {
		t.Fatalf("Members(Draining) = %#v, want non-nil empty", got)
	}
	m.StartDrain(3)
	m.StartDrain(1)
	got := m.Members(Draining)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Members(Draining) = %v, want [1 3]", got)
	}
}

func TestEventsAndMetrics(t *testing.T) {
	m := NewManager(2)
	var events []Event
	m.SetOnEvent(func(e Event) { events = append(events, e) })
	reg := metrics.NewRegistry()
	m.RegisterMetrics(reg)

	m.StartDrain(0)
	m.FinishDrain(0)
	m.Admit(0)
	m.SetHealth(1, Down)

	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	wantKinds := []EventKind{EventDrain, EventRemove, EventAdmit, EventHealthChange}
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cascade_membership_changes_total{event="admit"} 1`,
		`cascade_membership_changes_total{event="drain"} 1`,
		`cascade_membership_changes_total{event="remove"} 1`,
		`cascade_membership_changes_total{event="health"} 1`,
		`cascade_node_health{node="1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestCheckerThresholds(t *testing.T) {
	m := NewManager(1)
	healthy := true
	c := NewChecker(m, CheckerConfig{
		Probe:            func(model.NodeID) bool { return healthy },
		FailureThreshold: 3,
		SuccessThreshold: 2,
	})

	c.Tick()
	if got := m.HealthOf(0); got != Healthy {
		t.Fatalf("after ok probe: %v, want healthy", got)
	}

	healthy = false
	c.Tick()
	if got := m.HealthOf(0); got != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", got)
	}
	if !m.Routable(0) {
		t.Fatal("suspect node must stay routable")
	}
	c.Tick()
	if got := m.HealthOf(0); got != Suspect {
		t.Fatalf("after 2 failures: %v, want suspect", got)
	}
	c.Tick()
	if got := m.HealthOf(0); got != Down {
		t.Fatalf("after 3 failures: %v, want down", got)
	}
	if m.Routable(0) {
		t.Fatal("down node must not be routable")
	}

	healthy = true
	c.Tick()
	if got := m.HealthOf(0); got != Down {
		t.Fatalf("after 1 success: %v, want still down", got)
	}
	c.Tick()
	if got := m.HealthOf(0); got != Healthy {
		t.Fatalf("after 2 successes: %v, want healthy", got)
	}
}

func TestCheckerSkipsNonActive(t *testing.T) {
	m := NewManager(2)
	m.StartDrain(1)
	probed := make(map[model.NodeID]int)
	c := NewChecker(m, CheckerConfig{Probe: func(id model.NodeID) bool {
		probed[id]++
		return true
	}})
	c.Tick()
	if probed[1] != 0 {
		t.Fatal("draining node should not be probed")
	}
	if probed[0] != 1 {
		t.Fatal("active node should be probed")
	}
}

func TestCheckerRunStops(t *testing.T) {
	m := NewManager(1)
	c := NewChecker(m, CheckerConfig{
		Probe:    func(model.NodeID) bool { return true },
		Interval: time.Millisecond,
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { c.Run(stop); close(done) }()
	time.Sleep(5 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop")
	}
}

func TestEpochGuardWaitsOnlyForOlderEpochs(t *testing.T) {
	g := NewEpochGuard()
	old := g.Enter() // request on the old view

	e := g.Bump()
	newer := g.Enter() // request on the new view; must not block the wait
	if newer != e {
		t.Fatalf("post-bump Enter = %d, want %d", newer, e)
	}

	released := make(chan struct{})
	go func() {
		g.WaitBefore(e)
		close(released)
	}()

	select {
	case <-released:
		t.Fatal("WaitBefore returned while an old-epoch request was in flight")
	case <-time.After(10 * time.Millisecond):
	}

	g.Exit(old)
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("WaitBefore did not return after the old-epoch request exited")
	}
	g.Exit(newer)
}

func TestEpochGuardConcurrent(t *testing.T) {
	g := NewEpochGuard()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				e := g.Enter()
				g.Exit(e)
			}
		}()
	}
	for i := 0; i < 10; i++ {
		e := g.Bump()
		g.WaitBefore(e)
	}
	wg.Wait()
	e := g.Bump()
	done := make(chan struct{})
	go func() { g.WaitBefore(e); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("WaitBefore wedged with no requests in flight")
	}
}

func TestParseHealth(t *testing.T) {
	for name, want := range map[string]Health{"healthy": Healthy, "suspect": Suspect, "down": Down} {
		got, err := ParseHealth(name)
		if err != nil || got != want {
			t.Fatalf("ParseHealth(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseHealth("sideways"); err == nil {
		t.Fatal("ParseHealth should reject unknown states")
	}
}

package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTopogen(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "topo.dot")
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer devnull.Close()
	os.Stdout = devnull

	flag.CommandLine = flag.NewFlagSet("topogen", flag.PanicOnError)
	os.Args = []string{"topogen", "-seed", "2", "-dot", dot}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph tiers {") {
		t.Fatalf("dot output wrong:\n%s", data[:100])
	}
}

// The smallest cascade the control plane can drain is two nodes (a node
// needs a parent to spill to). topogen validates every generated topology;
// this pins the minimal configuration at exactly that floor.
func TestRunTopogenMinimalStillDrainable(t *testing.T) {
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer devnull.Close()
	os.Stdout = devnull

	flag.CommandLine = flag.NewFlagSet("topogen", flag.PanicOnError)
	os.Args = []string{"topogen", "-seed", "1", "-wan", "1", "-mans", "1", "-per-man", "1",
		"-wan-extra", "-1", "-man-extra", "-1"}
	if err := run(); err != nil {
		t.Fatalf("minimal two-node topology should validate: %v", err)
	}
}

// Command topogen generates Tiers-style en-route topologies and reports
// their characteristics in the format of the paper's Table 1. It can also
// emit Graphviz dot for visual inspection.
//
// Usage:
//
//	topogen -seed 1
//	topogen -wan 50 -mans 10 -per-man 5 -dot topo.dot
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wan      = flag.Int("wan", 50, "WAN (backbone) nodes")
		mans     = flag.Int("mans", 10, "number of MANs")
		perMAN   = flag.Int("per-man", 5, "nodes per MAN")
		wanExtra = flag.Int("wan-extra", 25, "redundancy links in the WAN")
		manExtra = flag.Int("man-extra", 5, "redundancy links per MAN")
		wanDelay = flag.Float64("wan-delay", 0.146, "mean WAN link delay (s)")
		manDelay = flag.Float64("man-delay", 0.018, "mean MAN link delay (s)")
		seed     = flag.Int64("seed", 1, "generation seed")
		dotFile  = flag.String("dot", "", "write Graphviz dot to this file")
	)
	flag.Parse()

	cfg := cascade.TiersConfig{
		WANNodes:      *wan,
		MANs:          *mans,
		NodesPerMAN:   *perMAN,
		WANExtraLinks: *wanExtra,
		MANExtraLinks: *manExtra,
		WANDelayMean:  *wanDelay,
		MANDelayMean:  *manDelay,
	}
	net := cascade.GenerateTiers(cfg, rand.New(rand.NewSource(*seed)))
	if err := net.Validate(); err != nil {
		return fmt.Errorf("generated a degenerate topology (try different parameters): %w", err)
	}
	d := net.Describe()

	fmt.Println("Table 1: System Parameters for En-Route Architecture")
	fmt.Printf("%-32s %v\n", "Total number of nodes", d.TotalNodes)
	fmt.Printf("%-32s %v\n", "Number of WAN nodes", d.WANNodes)
	fmt.Printf("%-32s %v\n", "Number of MAN nodes", d.MANNodes)
	fmt.Printf("%-32s %v\n", "Number of network links", d.Links)
	fmt.Printf("%-32s %.3f second\n", "Average delay of WAN links", d.AvgWANDelay)
	fmt.Printf("%-32s %.3f second\n", "Average delay of MAN links", d.AvgMANDelay)
	fmt.Printf("%-32s %.1f hops\n", "Average route length", d.AvgRouteHops)

	if *dotFile == "" {
		return nil
	}
	f, err := os.Create(*dotFile)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "graph tiers {")
	fmt.Fprintln(f, "  node [shape=circle fontsize=8]")
	for u := 0; u < net.G.NumNodes(); u++ {
		shape := "doublecircle"
		if net.Kinds[u] == cascade.WANNodeKind {
			shape = "circle"
		}
		fmt.Fprintf(f, "  n%d [shape=%s]\n", u, shape)
	}
	for u := 0; u < net.G.NumNodes(); u++ {
		for _, e := range net.G.Neighbors(cascade.NodeID(u)) {
			if int(e.To) > u {
				fmt.Fprintf(f, "  n%d -- n%d [label=\"%.0fms\" fontsize=7]\n", u, e.To, e.Delay*1000)
			}
		}
	}
	fmt.Fprintln(f, "}")
	return nil
}

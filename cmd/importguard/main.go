// Command importguard enforces the engine boundary of the multi-incarnation
// refactor: the protocol incarnations (the replay schemes, the actor
// cluster and the HTTP gateway) must reach the placement optimizer only
// through internal/engine — never by importing internal/core directly. A
// direct import means transport code is re-deriving protocol steps instead
// of delegating to the shared engine, exactly the drift the engine
// extraction removed.
//
// Run via `make lint` (part of `make check`). Exit status 1 and one line
// per offending file on violation.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// guarded are the incarnation packages; forbidden is the import only
// internal/engine (and the public facade) may use.
var (
	guarded = []string{
		"internal/scheme",
		"internal/sim",
		"internal/runtime",
		"internal/httpgw",
	}
	forbidden = "cascade/internal/core"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations := 0
	for _, pkg := range guarded {
		dir := filepath.Join(root, filepath.FromSlash(pkg))
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "importguard: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			// Test files may reach into core to cross-check the DP against
			// brute force; only shipped code is guarded.
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				fmt.Fprintf(os.Stderr, "importguard: %v\n", err)
				os.Exit(2)
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == forbidden {
					fmt.Fprintf(os.Stderr, "importguard: %s imports %s directly; go through cascade/internal/engine\n", path, forbidden)
					violations++
				}
			}
		}
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// Command importguard enforces the repo's import boundaries:
//
//   - Engine boundary: the protocol incarnations (the replay schemes, the
//     actor cluster and the HTTP gateway) must reach the placement
//     optimizer only through internal/engine — never by importing
//     internal/core directly. A direct import means transport code is
//     re-deriving protocol steps instead of delegating to the shared
//     engine, exactly the drift the engine extraction removed.
//   - Observability independence: internal/flightrec and internal/audit
//     may import only the standard library plus internal/model and
//     internal/metrics. The auditor is an independent oracle for the
//     protocol implementation — importing internal/core (or the engine,
//     or a transport) would let the oracle share a bug with the code under
//     test, and would also create an import cycle with the engine's hooks.
//
// Run via `make lint` (part of `make check`). Exit status 1 and one line
// per offending file on violation.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// rule constrains one package directory's imports: an import violates the
// rule when deny lists it, or when allowPrefix is set and the import starts
// with allowPrefix but is not in allow.
type rule struct {
	pkg    string   // directory, slash-separated, relative to the repo root
	deny   []string // imports this package must not use
	reason string   // appended to the violation line

	allowPrefix string   // when set, imports under this prefix…
	allow       []string // …must be one of these
}

var rules = []rule{
	{pkg: "internal/scheme", deny: []string{"cascade/internal/core"}, reason: "go through cascade/internal/engine"},
	{pkg: "internal/sim", deny: []string{"cascade/internal/core"}, reason: "go through cascade/internal/engine"},
	{pkg: "internal/runtime", deny: []string{"cascade/internal/core"}, reason: "go through cascade/internal/engine"},
	{pkg: "internal/httpgw", deny: []string{"cascade/internal/core"}, reason: "go through cascade/internal/engine"},

	{
		pkg:         "internal/flightrec",
		allowPrefix: "cascade/",
		allow:       []string{"cascade/internal/model", "cascade/internal/metrics"},
		reason:      "the flight recorder must stay dependency-free (stdlib + model + metrics only)",
	},
	{
		pkg:         "internal/audit",
		allowPrefix: "cascade/",
		allow:       []string{"cascade/internal/model", "cascade/internal/metrics"},
		reason:      "the auditor is an independent oracle (stdlib + model + metrics only)",
	},
	{
		pkg:         "internal/controlplane",
		allowPrefix: "cascade/",
		allow:       []string{"cascade/internal/model", "cascade/internal/metrics", "cascade/internal/topology"},
		reason:      "the control plane sits below every incarnation (stdlib + model + metrics + topology only)",
	},
	{
		pkg:         "internal/store",
		allowPrefix: "cascade/",
		allow:       []string{"cascade/internal/model", "cascade/internal/metrics"},
		reason:      "the body store sits below every incarnation (stdlib + model + metrics only)",
	},
	{
		pkg:         "internal/coherency",
		allowPrefix: "cascade/",
		allow:       []string{"cascade/internal/model", "cascade/internal/metrics"},
		reason:      "the coherency substrate sits below every incarnation (stdlib + model + metrics only)",
	},
	{
		pkg:         "internal/span",
		allowPrefix: "cascade/",
		allow:       []string{"cascade/internal/model", "cascade/internal/metrics"},
		reason:      "span tracing sits below every incarnation (stdlib + model + metrics only)",
	},
	{
		pkg:         "internal/obs/federate",
		allowPrefix: "cascade/",
		allow:       []string{"cascade/internal/model", "cascade/internal/metrics", "cascade/internal/controlplane"},
		reason:      "the federator observes from outside (stdlib + model + metrics + controlplane only)",
	},
}

func (r rule) violates(importPath string) bool {
	for _, d := range r.deny {
		if importPath == d {
			return true
		}
	}
	if r.allowPrefix != "" && strings.HasPrefix(importPath, r.allowPrefix) {
		for _, a := range r.allow {
			if importPath == a {
				return false
			}
		}
		return true
	}
	return false
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	violations := 0
	for _, r := range rules {
		dir := filepath.Join(root, filepath.FromSlash(r.pkg))
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "importguard: %v\n", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			// Test files may reach into core to cross-check the DP against
			// brute force; only shipped code is guarded.
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				fmt.Fprintf(os.Stderr, "importguard: %v\n", err)
				os.Exit(2)
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if r.violates(ip) {
					fmt.Fprintf(os.Stderr, "importguard: %s imports %s; %s\n", path, ip, r.reason)
					violations++
				}
			}
		}
	}
	if violations > 0 {
		os.Exit(1)
	}
}

package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cascade"
)

// gateChain assembles an in-process origin ← 3-gateway chain, the same
// shape `make loadtest` drives, and returns the edge URL.
func gateChain(t *testing.T) string {
	t.Helper()
	origin := httptest.NewServer(cascade.NewHTTPOrigin(func(cascade.ObjectID) int { return 800 }))
	t.Cleanup(origin.Close)
	upstream := origin.URL
	clock := cascade.WallClock()
	for i := 2; i >= 0; i-- {
		n := cascade.NewHTTPCacheNode(cascade.NodeID(i), upstream, 0.1, 1<<22, 256, clock)
		srv := httptest.NewServer(n)
		t.Cleanup(srv.Close)
		upstream = srv.URL
	}
	return upstream
}

// drive runs a small closed-loop Zipf-ish load against the edge until
// stop closes — cascadeload's discipline at smoke size.
func drive(t *testing.T, edge string, stop <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for u := 0; u < 4; u++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, 1.2, 1, 199)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(edge + "/objects/" + strconv.FormatUint(zipf.Uint64(), 10))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(int64(u))
	}
	return &wg
}

// TestSLOGate is `make slo`: cascademon watches an in-process gateway
// chain under load and must pass at the declared SLOs; flipping the
// hit-ratio floor above what the chain can achieve must exit non-zero.
func TestSLOGate(t *testing.T) {
	edge := gateChain(t)

	// Warm the caches so the chain absorbs the steady state: three passes
	// over the hot set (seed descriptors, place copies, then hits).
	for pass := 0; pass < 3; pass++ {
		for obj := 0; obj < 50; obj++ {
			resp, err := http.Get(edge + "/objects/" + strconv.Itoa(obj))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}

	stop := make(chan struct{})
	wg := drive(t, edge, stop)
	defer func() { close(stop); wg.Wait() }()

	achievable := config{
		edge:        edge,
		interval:    50 * time.Millisecond,
		total:       700 * time.Millisecond,
		windows:     []time.Duration{200 * time.Millisecond, time.Second},
		sloP99:      2 * time.Second, // loopback chain: generous
		sloHit:      0.10,            // warm Zipf head: comfortably above
		sloStaleMax: 0,               // no writers → zero-stale must hold
	}
	var dash strings.Builder
	code, err := run(achievable, &dash)
	if err != nil {
		t.Fatalf("monitor error: %v\n%s", err, dash.String())
	}
	if code != 0 {
		t.Fatalf("achievable SLOs breached (exit %d):\n%s", code, dash.String())
	}
	for _, want := range []string{"cascademon", "e2e hit", "SLO burn rates", "hit_ratio", "SLO OK"} {
		if !strings.Contains(dash.String(), want) {
			t.Fatalf("dashboard missing %q:\n%s", want, dash.String())
		}
	}

	// Negative gate: a hit-ratio floor no cascade can reach (impossible
	// while any request escapes to the origin) must exit non-zero.
	impossible := achievable
	impossible.total = 300 * time.Millisecond
	impossible.sloHit = 0.999
	var dash2 strings.Builder
	code, err = run(impossible, &dash2)
	if err != nil {
		t.Fatalf("monitor error on negative gate: %v", err)
	}
	if code == 0 {
		t.Fatalf("unachievable hit floor passed the gate:\n%s", dash2.String())
	}
	if !strings.Contains(dash2.String(), "SLO BREACH") || !strings.Contains(dash2.String(), "hit_ratio") {
		t.Fatalf("breach not reported:\n%s", dash2.String())
	}
}

// TestOnceAgainstDeadEdge pins the error path: a monitor pointed at
// nothing reports an error, not a verdict.
func TestOnceAgainstDeadEdge(t *testing.T) {
	cfg := config{edge: "http://127.0.0.1:1", once: true, interval: time.Millisecond,
		windows: []time.Duration{time.Second}}
	if _, err := run(cfg, &strings.Builder{}); err == nil {
		t.Fatal("dead edge produced no error")
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-edge", "http://x", "-windows", "10s, 1m", "-slo-p99", "250ms", "-slo-hit", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.windows) != 2 || cfg.windows[0] != 10*time.Second || cfg.windows[1] != time.Minute {
		t.Fatalf("windows parsed to %v", cfg.windows)
	}
	if cfg.sloP99 != 250*time.Millisecond || cfg.sloHit != 0.5 || cfg.sloStaleMax != -1 {
		t.Fatalf("slos parsed to %+v", cfg)
	}
	if _, err := parseFlags(nil); err == nil {
		t.Fatal("missing -edge accepted")
	}
	if _, err := parseFlags([]string{"-edge", "x", "-windows", "nope"}); err == nil {
		t.Fatal("malformed window accepted")
	}
}

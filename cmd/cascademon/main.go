// Command cascademon is the cascade's live SLO console: it runs the
// metrics federator (internal/obs/federate) on an interval against a
// gateway chain, derives the cascade-level SLIs no single node can see,
// evaluates multi-window burn rates against declared SLOs, and renders a
// refreshing plain-text dashboard.
//
// Declared SLOs (each optional):
//
//	-slo-p99 250ms   p99 end-to-end latency bound at the edge
//	-slo-hit 0.5     end-to-end hit-ratio floor (fraction of client
//	                 requests the cascade absorbs without an origin fetch)
//	-slo-stale-max 0 stale serves allowed (0 declares the zero-CAS-stale SLO)
//
// Burn rates follow the multi-window discipline: for each -windows entry
// the monitor computes the SLI over just that trailing window (deltas of
// cumulative counters and histogram buckets, not lifetime averages) and
// reports how fast that window consumes the error budget; a burn above
// 1.0 in every window at once means the cascade is currently violating,
// not just remembering an old incident.
//
// Exit status: with -for (or -once) the monitor runs bounded and exits 0
// when every declared SLO held over the whole run, 2 on breach — the CI
// gate `make slo` is exactly this. Unbounded runs exit only on error (1).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"cascade/internal/metrics"
	"cascade/internal/obs/federate"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "cascademon:", err)
		os.Exit(1)
	}
	code, err := run(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cascademon:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

type config struct {
	edge     string
	interval time.Duration
	total    time.Duration // 0 = run until killed
	once     bool
	noClear  bool
	windows  []time.Duration

	sloP99      time.Duration // 0 = not declared
	sloHit      float64       // <0 = not declared
	sloStaleMax float64       // <0 = not declared
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("cascademon", flag.ContinueOnError)
	cfg := config{}
	var windows string
	fs.StringVar(&cfg.edge, "edge", "", "base URL of the chain's client-facing node (required)")
	fs.DurationVar(&cfg.interval, "interval", 2*time.Second, "scrape period")
	fs.DurationVar(&cfg.total, "for", 0, "run this long then exit with the SLO verdict (0 = forever)")
	fs.BoolVar(&cfg.once, "once", false, "single scrape: print the dashboard, exit with the verdict")
	fs.BoolVar(&cfg.noClear, "no-clear", false, "append dashboards instead of redrawing in place")
	fs.StringVar(&windows, "windows", "30s,5m", "comma-separated burn-rate windows")
	fs.DurationVar(&cfg.sloP99, "slo-p99", 0, "SLO: edge p99 latency bound (0 = not declared)")
	fs.Float64Var(&cfg.sloHit, "slo-hit", -1, "SLO: end-to-end hit-ratio floor (negative = not declared)")
	fs.Float64Var(&cfg.sloStaleMax, "slo-stale-max", -1, "SLO: stale serves allowed, 0 = zero-stale (negative = not declared)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.edge == "" {
		return cfg, fmt.Errorf("-edge is required")
	}
	for _, w := range strings.Split(windows, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(w))
		if err != nil {
			return cfg, fmt.Errorf("-windows: %w", err)
		}
		cfg.windows = append(cfg.windows, d)
	}
	return cfg, nil
}

// snapshot is one scrape: cumulative SLIs plus the edge's cumulative
// latency distribution, timestamped so windows can be cut later. Hop
// metadata (membership, health) is kept for the dashboard; the raw sample
// sets are dropped to bound memory on long runs.
type snapshot struct {
	at   time.Time
	hops []federate.Hop
	slis federate.SLIs
	lat  metrics.Histogram
}

// deepestMisses is the traffic that escaped the whole cascade.
func deepestMisses(s federate.SLIs) float64 {
	if len(s.PerHop) == 0 {
		return 0
	}
	return s.PerHop[len(s.PerHop)-1].Misses
}

// burn is one SLO × window evaluation. A rate above 1 means the window
// consumes error budget faster than the SLO allows; math.Inf marks a
// zero-budget SLO (any bad event burns infinitely fast).
type burn struct {
	window time.Duration
	rate   float64
	ok     bool
}

// windowDelta cuts the trailing window out of the history: the snapshot
// pair (oldest within the window, newest). With one snapshot the whole
// history is the window.
func windowDelta(hist []snapshot, w time.Duration) (from, to snapshot) {
	to = hist[len(hist)-1]
	from = hist[0]
	cutoff := to.at.Add(-w)
	for _, s := range hist {
		if s.at.After(cutoff) {
			break
		}
		from = s
	}
	return from, to
}

// evalBurns computes every declared SLO's burn rate over every window.
func evalBurns(cfg config, hist []snapshot) map[string][]burn {
	out := make(map[string][]burn)
	for _, w := range cfg.windows {
		from, to := windowDelta(hist, w)
		dReq := to.slis.EdgeRequests - from.slis.EdgeRequests

		if cfg.sloP99 > 0 {
			d := to.lat.Delta(&from.lat)
			frac := 1 - d.FractionAtOrBelow(cfg.sloP99.Seconds())
			out["p99_latency"] = append(out["p99_latency"], burn{w, frac / 0.01, frac/0.01 <= 1})
		}
		if cfg.sloHit >= 0 {
			rate, ok := 0.0, true
			if dReq > 0 {
				missFrac := (deepestMisses(to.slis) - deepestMisses(from.slis)) / dReq
				budget := 1 - cfg.sloHit
				if budget <= 0 {
					if missFrac > 0 {
						rate, ok = math.Inf(1), false
					}
				} else {
					rate = missFrac / budget
					ok = rate <= 1
				}
			}
			out["hit_ratio"] = append(out["hit_ratio"], burn{w, rate, ok})
		}
		if cfg.sloStaleMax >= 0 {
			dStale := to.slis.StaleServes - from.slis.StaleServes
			rate, ok := 0.0, true
			if dStale > cfg.sloStaleMax {
				rate, ok = math.Inf(1), false
			}
			out["stale_serves"] = append(out["stale_serves"], burn{w, rate, ok})
		}
	}
	return out
}

// verdict evaluates the declared SLOs over the whole run (first snapshot
// to last) — the bounded-run exit criterion. It returns the failed SLO
// names.
func verdict(cfg config, hist []snapshot) []string {
	var failed []string
	first, last := hist[0], hist[len(hist)-1]
	if cfg.sloP99 > 0 {
		d := last.lat.Delta(&first.lat)
		if d.Count() > 0 && 1-d.FractionAtOrBelow(cfg.sloP99.Seconds()) > 0.01 {
			failed = append(failed, "p99_latency")
		}
	}
	if cfg.sloHit >= 0 {
		dReq := last.slis.EdgeRequests - first.slis.EdgeRequests
		if dReq > 0 {
			hit := 1 - (deepestMisses(last.slis)-deepestMisses(first.slis))/dReq
			if hit < cfg.sloHit {
				failed = append(failed, "hit_ratio")
			}
		}
	}
	if cfg.sloStaleMax >= 0 {
		if last.slis.StaleServes-first.slis.StaleServes > cfg.sloStaleMax {
			failed = append(failed, "stale_serves")
		}
	}
	return failed
}

// capture scrapes one snapshot of the chain.
func capture(f *federate.Federator, edge string) (snapshot, error) {
	view, err := f.Scrape(edge)
	if err != nil {
		return snapshot{}, err
	}
	hops := make([]federate.Hop, len(view.Hops))
	for i, h := range view.Hops {
		h.Samples = nil
		hops[i] = h
	}
	return snapshot{
		at:   time.Now(),
		hops: hops,
		slis: view.SLIs(),
		lat:  view.Histogram("cascade_gw_request_seconds", []int{0}),
	}, nil
}

// run is the monitor loop; factored from main so the SLO gate test drives
// the exact shipping code path. Returns the process exit code.
func run(cfg config, out io.Writer) (int, error) {
	f := &federate.Federator{}
	var hist []snapshot

	deadline := time.Time{}
	if cfg.total > 0 {
		deadline = time.Now().Add(cfg.total)
	}
	for {
		snap, err := capture(f, cfg.edge)
		if err != nil {
			return 1, err
		}
		hist = append(hist, snap)
		if limit := 4096; len(hist) > limit { // bound memory on long runs;
			// the first snapshot survives so the whole-run verdict keeps
			// its baseline.
			hist = append(hist[:1], hist[len(hist)-limit+1:]...)
		}
		burns := evalBurns(cfg, hist)
		render(cfg, out, hist, burns)

		if cfg.once || (!deadline.IsZero() && !time.Now().Before(deadline)) {
			failed := verdict(cfg, hist)
			if len(failed) > 0 {
				fmt.Fprintf(out, "SLO BREACH: %s\n", strings.Join(failed, ", "))
				return 2, nil
			}
			if cfg.once || cfg.total > 0 {
				fmt.Fprintln(out, "SLO OK")
				return 0, nil
			}
		}
		time.Sleep(cfg.interval)
	}
}

// render draws the dashboard: chain table, cascade SLIs, burn rates.
func render(cfg config, out io.Writer, hist []snapshot, burns map[string][]burn) {
	if !cfg.noClear {
		fmt.Fprint(out, "\033[H\033[2J")
	}
	snap := hist[len(hist)-1]
	s := snap.slis
	fmt.Fprintf(out, "cascademon · %s · %d hops · scrape #%d\n\n",
		snap.at.Format("15:04:05"), len(s.PerHop), len(hist))

	fmt.Fprintf(out, "%-6s %-10s %-9s %12s %12s %8s %8s\n",
		"node", "member", "health", "hits", "misses", "local%", "share%")
	for i, h := range s.PerHop {
		member, health := "-", "-"
		if i < len(snap.hops) {
			member, health = snap.hops[i].Membership, snap.hops[i].Health
		}
		fmt.Fprintf(out, "%-6d %-10s %-9s %12.0f %12.0f %7.1f%% %7.1f%%\n",
			h.Node, member, health, h.Hits, h.Misses, 100*h.HitRatio, 100*h.Share)
	}

	fmt.Fprintf(out, "\ncascade: %.0f edge requests · e2e hit %.1f%% · stale %.0f · cas conflicts %.0f · degraded %.0f\n",
		s.EdgeRequests, 100*s.EndToEndHit, s.StaleServes, s.CASConflicts, s.Degraded)
	fmt.Fprintf(out, "latency (edge): p50 %s · p95 %s · p99 %s\n",
		fmtSec(s.LatencyP50), fmtSec(s.LatencyP95), fmtSec(s.LatencyP99))
	fmt.Fprintf(out, "ledger: predicted %.2f · realized %.2f · drift %+.1f%%\n",
		s.LedgerPredicted, s.LedgerRealized, 100*s.LedgerDrift)

	if len(burns) > 0 {
		fmt.Fprintln(out, "\nSLO burn rates:")
		for _, name := range []string{"p99_latency", "hit_ratio", "stale_serves"} {
			bs, declared := burns[name]
			if !declared {
				continue
			}
			fmt.Fprintf(out, "  %-13s", name)
			for _, b := range bs {
				state := "ok"
				if !b.ok {
					state = "BURN"
				}
				fmt.Fprintf(out, "  [%v %5.2f %s]", b.window, b.rate, state)
			}
			fmt.Fprintln(out)
		}
	}
}

func fmtSec(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// Command cascadegw runs one node of a coordinated HTTP cache chain — the
// paper's protocol as a deployable gateway process. Start an origin, then
// chain gateways toward the clients:
//
//	cascadegw -origin -listen :8080 -object-size 4096
//	cascadegw -listen :8081 -upstream http://localhost:8080 -cost 0.10 -capacity 256MB
//	cascadegw -listen :8082 -upstream http://localhost:8081 -cost 0.02 -capacity 64MB
//
// Clients fetch GET /objects/<id> from the last gateway. All coordination
// state (piggybacked frequencies, cost losses, the placement decision, the
// miss-penalty counter) travels in X-Cascade-* headers; see package
// internal/httpgw.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cascadegw:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", ":8080", "address to serve on")
		origin   = flag.Bool("origin", false, "run as the origin server instead of a cache gateway")
		objSize  = flag.Int("object-size", 4096, "origin: payload bytes per synthetic object")
		dir      = flag.String("dir", "", "origin: serve files from this directory instead of synthesizing")
		upstream = flag.String("upstream", "", "gateway: upstream base URL (origin or next gateway)")
		cost     = flag.Float64("cost", 0.1, "gateway: cost of the link toward upstream")
		capacity = flag.String("capacity", "64MB", "gateway: cache capacity (e.g. 512KB, 64MB, 2GB)")
		dEntries = flag.Int("dcache", 10000, "gateway: descriptor-cache entries")
		shards   = flag.Int("shards", 1, "gateway: partition the cache state across this many shards (rounded up to a power of two)")
		textOnly = flag.Bool("text-headers", false, "gateway: disable binary wire framing, speak textual X-Cascade-* headers only")
		nodeID   = flag.Int("id", 0, "gateway: node ID used in protocol headers")
		state    = flag.String("state", "", "gateway: warm-start snapshot file (loaded at boot, saved on shutdown)")
		ttl      = flag.Float64("ttl", 0, "gateway: revalidate cached copies older than this many seconds (0 = never)")
		cohMode  = flag.String("coherency", "", "coherency mode (ttl, psi, cas); origin: attach the generation authority, gateway: generation-guarded serving (empty = off)")

		segThreshold = flag.String("segment-threshold", "0", "origin: segment objects larger than this size (e.g. 1MB; 0 = never segment)")
		segSize      = flag.String("segment-size", "0", "origin: Range-segment size for large objects (defaults to the threshold)")
		spillDir     = flag.String("spill-dir", "", "gateway: spill evicted bodies to per-object files in this directory (empty = drop on evict)")
		spillMax     = flag.String("spill-max", "0", "gateway: disk budget for the spill tier (e.g. 1GB; 0 = unbounded)")
		spillTTL     = flag.Float64("spill-ttl", 0, "gateway: drop spilled bodies older than this many seconds (0 = keep until displaced)")

		originURL   = flag.String("origin-url", "", "gateway: origin base URL for degraded-mode fallback when the upstream chain is unreachable")
		upTimeout   = flag.Duration("up-timeout", 0, "gateway: upstream request timeout (0 = built-in default)")
		retries     = flag.Int("retries", 0, "gateway: upstream retries after the initial attempt (0 = default, negative = none)")
		brkThresh   = flag.Int("breaker-threshold", 0, "gateway: consecutive upstream failures that open the circuit breaker (0 = default, negative = disabled)")
		brkCool     = flag.Float64("breaker-cooldown", 0, "gateway: seconds the breaker stays open before probing (0 = default)")
		upHealth    = flag.Float64("up-health-interval", 1, "gateway: seconds between active upstream health probes (≤ 0 = disabled)")
		flightCap   = flag.Int("flight", 0, "protocol flight-recorder capacity in events (0 = default 256, negative = disabled); dump via GET /cascade/debug/flight")
		spanRate    = flag.Float64("spans", -1, "gateway: enable cascade-wide span tracing, keeping this fraction of unremarkable traces (error/stale/slow always kept; negative = disabled); dump via GET /cascade/debug/spans")
		spanCap     = flag.Int("span-capacity", 512, "gateway: span-ring capacity in spans (with -spans)")
		spanSlow    = flag.Duration("span-slow", 0, "gateway: force-keep traces slower than this end-to-end (with -spans; 0 = no slow threshold)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		metricsAddr = flag.String("metrics", "", "gateway: serve Prometheus /metrics on this address (e.g. localhost:9090; empty = disabled)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// A dedicated mux so the profiling endpoints never ride on the
		// public cache listener.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "cascadegw: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			psrv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.ListenAndServe(); err != nil {
				fmt.Fprintf(os.Stderr, "cascadegw: pprof: %v\n", err)
			}
		}()
	}

	var handler http.Handler
	if *origin {
		if *metricsAddr != "" {
			fmt.Fprintln(os.Stderr, "cascadegw: -metrics is gateway-only; ignored in origin mode (scrape /cascade/metrics on the main listener)")
		}
		var o *cascade.HTTPOrigin
		if *dir != "" {
			o = cascade.NewHTTPFileOrigin(*dir)
			fmt.Fprintf(os.Stderr, "cascadegw: origin on %s serving %s\n", *listen, *dir)
		} else {
			o = cascade.NewHTTPOrigin(func(cascade.ObjectID) int { return *objSize })
			fmt.Fprintf(os.Stderr, "cascadegw: origin on %s (%d-byte objects)\n", *listen, *objSize)
		}
		// The origin decides every placement that missed the whole chain,
		// so it audits its decisions like a cache node: cascade_audit_*
		// series at /cascade/metrics, decision flight ring at
		// /cascade/debug/flight.
		fc := 256
		if *flightCap != 0 {
			fc = *flightCap
		}
		o.EnableObservability(fc, cascade.WallClock())
		o.DisableBinaryFraming = *textOnly
		thr, err := parseBytes(*segThreshold)
		if err != nil {
			return fmt.Errorf("-segment-threshold: %w", err)
		}
		seg, err := parseBytes(*segSize)
		if err != nil {
			return fmt.Errorf("-segment-size: %w", err)
		}
		if seg == 0 {
			seg = thr
		}
		o.SegmentThreshold, o.SegmentSize = thr, seg
		if thr > 0 {
			fmt.Fprintf(os.Stderr, "cascadegw: segmenting objects over %s\n", *segThreshold)
		}
		if *cohMode != "" {
			mode, err := cascade.ParseCoherencyMode(*cohMode)
			if err != nil {
				return fmt.Errorf("-coherency: %w", err)
			}
			if mode != cascade.CoherencyNone {
				// The origin is the cascade's sole generation authority:
				// POST /cascade/admin/invalidate bumps generations here.
				o.Authority = cascade.NewCoherencyAuthority()
				fmt.Fprintf(os.Stderr, "cascadegw: origin generation authority enabled (%s)\n", mode)
			}
		}
		handler = o
	} else {
		if *upstream == "" {
			return fmt.Errorf("gateway mode needs -upstream (or pass -origin)")
		}
		capBytes, err := parseBytes(*capacity)
		if err != nil {
			return fmt.Errorf("-capacity: %w", err)
		}
		node := cascade.NewHTTPCacheNode(cascade.NodeID(*nodeID),
			strings.TrimRight(*upstream, "/"), *cost, capBytes, *dEntries, cascade.WallClock())
		node.TTL = *ttl
		node.DisableBinaryFraming = *textOnly
		if *shards > 1 {
			node.SetShards(*shards)
		}
		if *cohMode != "" {
			mode, err := cascade.ParseCoherencyMode(*cohMode)
			if err != nil {
				return fmt.Errorf("-coherency: %w", err)
			}
			// Before EnableSpill: the spill tier's generation-floor oracle
			// is wired from the coherency view at spill setup.
			node.EnableCoherency(mode)
			if mode != cascade.CoherencyNone {
				fmt.Fprintf(os.Stderr, "cascadegw: %s coherency enabled\n", mode)
			}
		}
		if *spillDir != "" {
			maxBytes, err := parseBytes(*spillMax)
			if err != nil {
				return fmt.Errorf("-spill-max: %w", err)
			}
			if err := node.EnableSpill(*spillDir, maxBytes, *spillTTL); err != nil {
				return fmt.Errorf("-spill-dir: %w", err)
			}
			fmt.Fprintf(os.Stderr, "cascadegw: spilling evicted bodies to %s\n", *spillDir)
		}
		node.OriginURL = strings.TrimRight(*originURL, "/")
		node.MaxRetries = *retries
		node.BreakerThreshold = *brkThresh
		node.BreakerCooldown = *brkCool
		if *flightCap != 0 {
			node.SetFlightCapacity(*flightCap)
		}
		if *spanRate >= 0 {
			node.EnableSpans(cascade.SpanPolicy{
				Rate: *spanRate,
				Slow: spanSlow.Seconds(),
			}, *spanCap)
			fmt.Fprintf(os.Stderr, "cascadegw: span tracing on (sample rate %g, ring %d)\n", *spanRate, *spanCap)
		}
		if *upTimeout != 0 {
			node.Client = &http.Client{Timeout: *upTimeout}
		}
		if *upHealth > 0 {
			// The active prober gates upstream selection ahead of the
			// circuit breaker: a probed-Down upstream fails fast to the
			// degraded path without waiting for request traffic to teach
			// the breaker.
			probeStop := make(chan struct{})
			defer close(probeStop)
			node.StartUpstreamHealthCheck(cascade.UpstreamHealthConfig{
				Interval: time.Duration(*upHealth * float64(time.Second)),
			}, probeStop)
		}
		if *state != "" {
			if f, err := os.Open(*state); err == nil {
				n, lerr := node.LoadSnapshot(f, 0)
				f.Close()
				if lerr != nil {
					fmt.Fprintf(os.Stderr, "cascadegw: snapshot load: %v\n", lerr)
				} else {
					fmt.Fprintf(os.Stderr, "cascadegw: warm-started %d objects from %s\n", n, *state)
				}
			}
			defer saveState(node, *state)
		}
		if *metricsAddr != "" {
			// Same separate-listener model as -pprof: operational scrapes
			// never contend with the public cache listener. The node also
			// serves the identical payload at /cascade/metrics on the main
			// listener for single-port deployments.
			mux := http.NewServeMux()
			mux.Handle("/metrics", node.MetricsHandler())
			go func() {
				fmt.Fprintf(os.Stderr, "cascadegw: metrics on http://%s/metrics\n", *metricsAddr)
				msrv := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
				if err := msrv.ListenAndServe(); err != nil {
					fmt.Fprintf(os.Stderr, "cascadegw: metrics: %v\n", err)
				}
			}()
		}
		handler = node
		fmt.Fprintf(os.Stderr, "cascadegw: node %d on %s → %s (capacity %s, link cost %g)\n",
			*nodeID, *listen, *upstream, *capacity, *cost)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case <-stop:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// saveState persists a node's cache for warm restarts.
func saveState(node *cascade.HTTPCacheNode, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cascadegw: snapshot save: %v\n", err)
		return
	}
	defer f.Close()
	if err := node.SaveSnapshot(f); err != nil {
		fmt.Fprintf(os.Stderr, "cascadegw: snapshot save: %v\n", err)
	}
}

// parseBytes parses human-friendly sizes: plain bytes, or KB/MB/GB (binary
// multiples).
func parseBytes(s string) (int64, error) {
	in := strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(in, "GB"):
		mult, in = 1<<30, strings.TrimSuffix(in, "GB")
	case strings.HasSuffix(in, "MB"):
		mult, in = 1<<20, strings.TrimSuffix(in, "MB")
	case strings.HasSuffix(in, "KB"):
		mult, in = 1<<10, strings.TrimSuffix(in, "KB")
	case strings.HasSuffix(in, "B"):
		in = strings.TrimSuffix(in, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(in), 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	return n * mult, nil
}

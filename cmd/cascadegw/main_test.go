package main

import "testing"

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"1024":   1024,
		"64KB":   64 << 10,
		"64MB":   64 << 20,
		"2GB":    2 << 30,
		"100B":   100,
		" 8 MB ": 8 << 20,
		"0":      0,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Fatalf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-5MB", "12TBx"} {
		if _, err := parseBytes(bad); err == nil {
			t.Fatalf("parseBytes(%q) accepted", bad)
		}
	}
}

// Command tracegen produces request traces in the cascade text format, the
// stand-in for the paper's Boeing proxy traces (see DESIGN.md).
//
// Usage:
//
//	tracegen -o trace.txt -objects 100000 -requests 1000000 -zipf 0.8
//	tracegen -o trace.txt -squid access.log      # convert a Squid log
//	tracegen -o day.txt -merge p1.txt,p2.txt     # the paper's proxy merge
//	tracegen -o sub.txt -top-from day.txt -top 100000  # §3.1 subtrace
//	tracegen -describe sub.txt                   # workload statistics
//
// The output replays identically through cascadesim -trace or the
// cascade.TraceReader API.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		objects  = flag.Int("objects", 20000, "object universe size")
		requests = flag.Int("requests", 400000, "number of requests")
		clients  = flag.Int("clients", 2000, "clients")
		servers  = flag.Int("servers", 200, "origin servers")
		duration = flag.Float64("duration", 86400, "trace span in seconds")
		zipf     = flag.Float64("zipf", 0.8, "Zipf popularity exponent")
		median   = flag.Float64("median", 4096, "median object size in bytes")
		sigma    = flag.Float64("sigma", 1.3, "log-normal size sigma")
		seed     = flag.Int64("seed", 1, "generator seed")
		squid    = flag.String("squid", "", "convert this Squid access.log instead of synthesizing")
		topFrom  = flag.String("top-from", "", "extract a top-N subtrace from this trace file (the paper's §3.1 methodology)")
		topN     = flag.Int("top", 100000, "with -top-from: number of most popular objects to keep")
		describe = flag.String("describe", "", "print workload statistics of this trace file and exit")
		merge    = flag.String("merge", "", "comma-separated trace files to merge by timestamp (the paper's multi-proxy merge)")
	)
	flag.Parse()

	if *merge != "" {
		return mergeTraces(strings.Split(*merge, ","), *out)
	}

	if *describe != "" {
		f, err := os.Open(*describe)
		if err != nil {
			return err
		}
		defer f.Close()
		stats, err := cascade.TraceStats(f)
		if err != nil {
			return err
		}
		return stats.Format(os.Stdout)
	}

	if *squid != "" {
		return convertSquid(*squid, *out)
	}
	if *topFrom != "" {
		return extractTop(*topFrom, *out, *topN)
	}

	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects:    *objects,
		Requests:   *requests,
		Clients:    *clients,
		Servers:    *servers,
		Duration:   *duration,
		ZipfTheta:  *zipf,
		SizeMedian: *median,
		SizeSigma:  *sigma,
		Seed:       *seed,
	})

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	tw, err := cascade.NewTraceWriter(w, gen.Catalog())
	if err != nil {
		return err
	}
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if err := tw.WriteRequest(req); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d objects, %d requests, %.1f MB total object bytes\n",
		*objects, *requests, float64(gen.Catalog().TotalBytes)/(1<<20))
	return nil
}

func mergeTraces(ins []string, out string) error {
	var opens []func() (io.ReadCloser, error)
	for _, in := range ins {
		in := strings.TrimSpace(in)
		if in == "" {
			continue
		}
		opens = append(opens, func() (io.ReadCloser, error) { return os.Open(in) })
	}
	var dst *os.File = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	merged, err := cascade.MergeTraces(opens, dst)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: merged %d requests from %d traces\n", merged, len(opens))
	return nil
}

func extractTop(in, out string, n int) error {
	open := func() (io.ReadCloser, error) { return os.Open(in) }
	var dst *os.File = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	stats, err := cascade.ExtractTopObjects(open, dst, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: kept top %d/%d objects, %d/%d requests (%.1f%% coverage)\n",
		stats.KeptObjects, stats.InputObjects, stats.KeptRequests, stats.InputRequests,
		100*stats.RequestCoverage)
	return nil
}

func convertSquid(in, out string) error {
	src, err := os.Open(in)
	if err != nil {
		return err
	}
	defer src.Close()
	var dst *os.File = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	stats, err := cascade.ConvertSquidLog(src, dst)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: converted %d/%d lines: %d requests, %d objects, %d clients, %d servers\n",
		stats.Requests, stats.Lines, stats.Requests, stats.Objects, stats.Clients, stats.Servers)
	return nil
}

package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func invoke(t *testing.T, args ...string) error {
	t.Helper()
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	flag.CommandLine = flag.NewFlagSet("tracegen", flag.PanicOnError)
	os.Args = append([]string{"tracegen"}, args...)
	return run()
}

func TestRunSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace")
	err := invoke(t, "-o", out, "-objects", "50", "-requests", "200",
		"-clients", "5", "-servers", "3", "-duration", "60")
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
}

func TestRunSquidConversion(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "access.log")
	content := "894974483.9 1 10.0.0.1 TCP_MISS/200 100 GET http://a/b - D/1 t\n" +
		"894974484.9 1 10.0.0.2 TCP_HIT/200 222 GET http://c/d - D/1 t\n"
	if err := os.WriteFile(log, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.trace")
	if err := invoke(t, "-squid", log, "-o", out); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(out); err != nil || info.Size() == 0 {
		t.Fatalf("converted trace not written: %v", err)
	}
	if err := invoke(t, "-squid", filepath.Join(dir, "missing.log"), "-o", out); err == nil {
		t.Fatal("missing squid log accepted")
	}
}

func TestRunTopExtraction(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace")
	if err := invoke(t, "-o", full, "-objects", "100", "-requests", "2000",
		"-clients", "5", "-servers", "3", "-duration", "100"); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "sub.trace")
	if err := invoke(t, "-top-from", full, "-top", "20", "-o", sub); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(sub)
	if err != nil || info.Size() == 0 {
		t.Fatalf("subtrace not written: %v", err)
	}
	if err := invoke(t, "-top-from", filepath.Join(dir, "absent"), "-o", sub); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestRunMerge(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.trace"), filepath.Join(dir, "b.trace")
	for i, p := range []string{a, b} {
		if err := invoke(t, "-o", p, "-objects", "30", "-requests", "100",
			"-clients", "3", "-servers", "2", "-duration", "50", "-seed", ""+string(rune('1'+i))); err != nil {
			t.Fatal(err)
		}
	}
	out := filepath.Join(dir, "merged.trace")
	if err := invoke(t, "-merge", a+","+b, "-o", out); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(out); err != nil || info.Size() == 0 {
		t.Fatalf("merged trace not written: %v", err)
	}
	if err := invoke(t, "-merge", filepath.Join(dir, "missing"), "-o", out); err == nil {
		t.Fatal("missing merge input accepted")
	}
}

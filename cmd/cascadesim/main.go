// Command cascadesim regenerates the tables and figures of Tang & Chanson
// (ICDE 2003) by trace-driven simulation.
//
// Usage:
//
//	cascadesim [flags]
//
// Examples:
//
//	cascadesim -list                        # what can be regenerated
//	cascadesim -exp all                     # every table, figure and study
//	cascadesim -exp fig6a,fig7a             # selected figures
//	cascadesim -exp radius -arch hierarchy  # MODULO radius study
//	cascadesim -exp figs -csv out/ -svg figs/ -html report.html
//	cascadesim -exp figs -baseline golden/  # regression drift detection
//	cascadesim -exp fig6a -replicate 5      # mean ± stdev over seeds
//
// The workload is synthetic (see DESIGN.md for the substitution rationale)
// unless -trace FILE replays a recorded trace in the cascade text format.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cascadesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exps    = flag.String("exp", "all", "experiments: all, figs, table1, radius, dcache, overhead, freshness, treeshape, zipf, costmodel, locality, levels, adaptivity, capacity, windowk, partial, analysis, chaos, or comma-separated figure IDs (fig6a..fig10b)")
		arch    = flag.String("arch", "both", "architecture for studies: enroute, hierarchy or both")
		sizes   = flag.String("sizes", "0.001,0.003,0.01,0.03,0.1", "relative cache sizes")
		schemes = flag.String("schemes", "LRU,MODULO(4),LNC-R,COORD", "schemes to compare")

		objects  = flag.Int("objects", 20000, "synthetic workload: object universe size")
		requests = flag.Int("requests", 400000, "synthetic workload: number of requests")
		clients  = flag.Int("clients", 2000, "synthetic workload: clients")
		servers  = flag.Int("servers", 200, "synthetic workload: origin servers")
		duration = flag.Float64("duration", 86400, "synthetic workload: span in seconds")
		zipf     = flag.Float64("zipf", 0.8, "synthetic workload: Zipf exponent")
		locality = flag.Float64("locality", 0, "synthetic workload: community-of-interest strength [0,1]")
		seed     = flag.Int64("seed", 1, "master seed (workload, topology, attachment)")

		traceFile = flag.String("trace", "", "replay a recorded trace file instead of the synthetic workload")
		csvDir    = flag.String("csv", "", "directory for CSV export (created if missing)")
		svgDir    = flag.String("svg", "", "directory for SVG figure export (created if missing)")
		htmlOut   = flag.String("html", "", "write a self-contained HTML report of every emitted table")
		chart     = flag.Bool("chart", false, "render ASCII charts next to the tables")
		md        = flag.Bool("md", false, "emit GitHub-flavored markdown instead of aligned text")
		replicate = flag.Int("replicate", 0, "rerun each figure under N seeds and report mean ± stdev")
		baseline  = flag.String("baseline", "", "directory of previously exported CSVs to compare against (5% tolerance)")
		chaosFrac = flag.Float64("chaos-frac", 0.2, "chaos study: fraction of nodes crashed mid-trace")
		chaosFail = flag.Float64("chaos-fail", 0.25, "chaos study: trace fraction at which nodes crash")
		chaosHeal = flag.Float64("chaos-heal", 0.6, "chaos study: trace fraction at which nodes recover")
		verbose   = flag.Bool("v", false, "print per-cell progress")
		list      = flag.Bool("list", false, "list available experiments, figures and schemes, then exit")
		jobs      = flag.Int("j", 0, "concurrent sweep cells (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		fmt.Println("figures:")
		for _, f := range cascade.Figures() {
			fmt.Printf("  %-8s %s\n", f.ID, f.Title)
		}
		fmt.Println("studies: table1 radius dcache overhead freshness costmodel treeshape zipf locality levels adaptivity capacity windowk partial analysis chaos")
		fmt.Printf("schemes: %s\n", strings.Join(cascade.SchemeNames(), ", "))
		return nil
	}

	sizeList, err := parseFloats(*sizes)
	if err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	cfg := cascade.ExperimentConfig{
		Trace: cascade.TraceConfig{
			Objects:  *objects,
			Requests: *requests,
			Clients:  *clients,
			Servers:  *servers,
			Duration: *duration,
			Seed:     *seed,
		},
		CacheSizes:  sizeList,
		Schemes:     splitList(*schemes),
		TopoSeed:    *seed,
		AttachSeed:  *seed,
		Concurrency: *jobs,
	}
	cfg.Trace.ZipfTheta = *zipf
	cfg.Trace.Locality = *locality
	if *traceFile != "" {
		w, err := cascade.FileWorkload(*traceFile)
		if err != nil {
			return err
		}
		cfg.Workload = w
		fmt.Fprintf(os.Stderr, "replaying %s: %d objects, %d requests\n",
			*traceFile, len(w.Catalog().Objects), w.Len())
	}

	var archs []cascade.Architecture
	switch *arch {
	case "enroute":
		archs = []cascade.Architecture{cascade.ArchEnRoute}
	case "hierarchy":
		archs = []cascade.Architecture{cascade.ArchHierarchy}
	case "both":
		archs = []cascade.Architecture{cascade.ArchEnRoute, cascade.ArchHierarchy}
	default:
		return fmt.Errorf("-arch: unknown architecture %q", *arch)
	}

	wantTable1, wantRadius, wantDCache, wantOverhead, wantFreshness := false, false, false, false, false
	wantTreeShape, wantZipf, wantCostModel, wantLocality, wantLevels := false, false, false, false, false
	wantAdaptivity, wantCapacity, wantWindowK, wantPartial := false, false, false, false
	wantAnalysis, wantChaos := false, false
	var figIDs []string
	for _, e := range splitList(*exps) {
		switch e {
		case "all":
			wantTable1, wantRadius, wantDCache, wantOverhead, wantFreshness = true, true, true, true, true
			wantTreeShape, wantZipf, wantCostModel, wantLocality, wantLevels = true, true, true, true, true
			wantAdaptivity, wantCapacity, wantWindowK, wantPartial = true, true, true, true
			wantAnalysis = true
			figIDs = allFigureIDs()
		case "figs", "figures":
			figIDs = allFigureIDs()
		case "table1":
			wantTable1 = true
		case "radius":
			wantRadius = true
		case "dcache":
			wantDCache = true
		case "overhead":
			wantOverhead = true
		case "freshness":
			wantFreshness = true
		case "treeshape":
			wantTreeShape = true
		case "zipf":
			wantZipf = true
		case "costmodel":
			wantCostModel = true
		case "locality":
			wantLocality = true
		case "levels":
			wantLevels = true
		case "adaptivity":
			wantAdaptivity = true
		case "capacity":
			wantCapacity = true
		case "windowk":
			wantWindowK = true
		case "partial":
			wantPartial = true
		case "analysis":
			wantAnalysis = true
		case "chaos":
			// Failure-aware replay through the live runtime; not part of
			// "all", which regenerates the paper's artifacts only.
			wantChaos = true
		default:
			if _, ok := cascade.FigureByID(e); !ok {
				return fmt.Errorf("-exp: unknown experiment %q", e)
			}
			figIDs = append(figIDs, e)
		}
	}

	driftTotal := 0
	var reportTables []cascade.ResultTable
	emit := func(name string, t cascade.ResultTable) error {
		if *htmlOut != "" {
			reportTables = append(reportTables, t)
		}
		if *md {
			if err := t.Markdown(os.Stdout); err != nil {
				return err
			}
		} else if err := t.Format(os.Stdout); err != nil {
			return err
		}
		if *baseline != "" {
			f, err := os.Open(filepath.Join(*baseline, name+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "baseline %s: %v\n", name, err)
			} else {
				drifts, err := cascade.CompareBaselineCSV(t, f, 0.05)
				f.Close()
				if err != nil {
					return fmt.Errorf("baseline %s: %w", name, err)
				}
				for _, d := range drifts {
					fmt.Fprintf(os.Stderr, "DRIFT %s %s\n", name, d)
				}
				driftTotal += len(drifts)
			}
		}
		if *chart {
			fmt.Println()
			if err := t.Chart(os.Stdout, 64, 16); err != nil {
				return err
			}
		}
		fmt.Println()
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*svgDir, name+".svg"))
			if err != nil {
				return err
			}
			if err := t.SVG(f, 560, 360); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return t.CSV(f)
	}

	if wantTable1 {
		_, t := cascade.Table1(cfg)
		if err := emit("table1", t); err != nil {
			return err
		}
	}

	// Run at most one sweep per architecture and project all requested
	// figures from it.
	needed := map[cascade.Architecture][]cascade.Figure{}
	for _, id := range figIDs {
		f, _ := cascade.FigureByID(id)
		if archAllowed(f.Arch, archs) {
			needed[f.Arch] = append(needed[f.Arch], f)
		}
	}
	for _, a := range archs {
		figs := needed[a]
		if len(figs) == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s sweep: %d cache sizes x %d schemes...\n",
			a, len(cfg.CacheSizes), len(cfg.Schemes))
		progress := func(c cascade.SweepCell) {
			if *verbose {
				fmt.Fprintf(os.Stderr, "  %-10s size=%.3f%%  latency=%.4fs  bhr=%.3f\n",
					c.Scheme, c.CacheSize*100, c.Summary.AvgLatency, c.Summary.ByteHitRatio)
			}
		}
		if *replicate > 1 {
			for _, f := range figs {
				t, err := cascade.Replicate(a, cfg, f, *replicate)
				if err != nil {
					return err
				}
				if err := emit(f.ID+"_replicated", t); err != nil {
					return err
				}
			}
			continue
		}
		sweep, err := cascade.RunSweep(a, cfg, progress)
		if err != nil {
			return err
		}
		for _, f := range figs {
			if err := emit(f.ID, sweep.Project(f)); err != nil {
				return err
			}
		}
	}

	for _, a := range archs {
		if wantRadius {
			t, err := cascade.RadiusStudy(a, cfg, nil)
			if err != nil {
				return err
			}
			if err := emit("radius_"+string(a), t); err != nil {
				return err
			}
		}
		if wantDCache {
			t, err := cascade.DCacheStudy(a, cfg, nil, 0.01)
			if err != nil {
				return err
			}
			if err := emit("dcache_"+string(a), t); err != nil {
				return err
			}
		}
		if wantOverhead {
			t, err := cascade.OverheadStudy(a, cfg)
			if err != nil {
				return err
			}
			if err := emit("overhead_"+string(a), t); err != nil {
				return err
			}
		}
		if wantFreshness {
			t, err := cascade.FreshnessStudy(a, cfg, nil, 0.01)
			if err != nil {
				return err
			}
			if err := emit("freshness_"+string(a), t); err != nil {
				return err
			}
		}
		if wantCostModel {
			t, err := cascade.CostModelStudy(a, cfg, 0.01)
			if err != nil {
				return err
			}
			if err := emit("costmodel_"+string(a), t); err != nil {
				return err
			}
		}
	}

	if wantTreeShape {
		t, err := cascade.TreeShapeStudy(cfg, nil, 0.01)
		if err != nil {
			return err
		}
		if err := emit("treeshape", t); err != nil {
			return err
		}
	}
	if wantZipf {
		t, err := cascade.ZipfStudy(cfg, nil, 0.01)
		if err != nil {
			return err
		}
		if err := emit("zipf", t); err != nil {
			return err
		}
	}
	if wantLocality {
		t, err := cascade.LocalityStudy(cfg, nil, 0.01)
		if err != nil {
			return err
		}
		if err := emit("locality", t); err != nil {
			return err
		}
	}
	if wantLevels {
		t, err := cascade.LevelStudy(cfg, 0.01)
		if err != nil {
			return err
		}
		if err := emit("levels", t); err != nil {
			return err
		}
	}
	if wantAdaptivity {
		t, err := cascade.AdaptivityStudy(cascade.ArchEnRoute, cfg, 0.03, 12)
		if err != nil {
			return err
		}
		if err := emit("adaptivity", t); err != nil {
			return err
		}
	}
	if wantCapacity {
		t, err := cascade.CapacityStudy(cfg, 0.01)
		if err != nil {
			return err
		}
		if err := emit("capacity", t); err != nil {
			return err
		}
	}
	if wantWindowK {
		t, err := cascade.WindowKStudy(cascade.ArchEnRoute, cfg, nil, 0.01)
		if err != nil {
			return err
		}
		if err := emit("windowk", t); err != nil {
			return err
		}
	}
	if wantPartial {
		t, err := cascade.PartialDeploymentStudy(cascade.ArchEnRoute, cfg, nil, 0.01)
		if err != nil {
			return err
		}
		if err := emit("partial", t); err != nil {
			return err
		}
	}
	if wantAnalysis {
		t, err := cascade.AnalysisStudy(cfg, 0.01)
		if err != nil {
			return err
		}
		if err := emit("analysis", t); err != nil {
			return err
		}
	}
	if wantChaos {
		for _, a := range archs {
			fmt.Fprintf(os.Stderr, "running %s chaos replay (%.0f%% of nodes crash at %.0f%% of trace)...\n",
				a, *chaosFrac*100, *chaosFail*100)
			res, t, err := cascade.ChaosStudy(cascade.ChaosConfig{
				Arch:         a,
				Base:         cfg,
				FailFraction: *chaosFrac,
				FailAt:       *chaosFail,
				HealAt:       *chaosHeal,
				Seed:         *seed,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "chaos %s: crashed nodes %v, routed around %d hops, %d degraded serves, recovery gap %.1f%%\n",
				a, res.Failed, res.Faulted.Stats.RoutedAround,
				res.Faulted.Stats.OriginFallbacks, res.RecoveryGap()*100)
			if err := emit("chaos_"+string(a), t); err != nil {
				return err
			}
		}
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cascade.WriteHTMLReport(f, "Coordinated cascaded caching — results", reportTables); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d tables)\n", *htmlOut, len(reportTables))
	}
	if *baseline != "" && driftTotal > 0 {
		return fmt.Errorf("%d cells drifted beyond tolerance", driftTotal)
	}
	return nil
}

func allFigureIDs() []string {
	var ids []string
	for _, f := range cascade.Figures() {
		ids = append(ids, f.ID)
	}
	return ids
}

func archAllowed(a cascade.Architecture, allowed []cascade.Architecture) bool {
	for _, x := range allowed {
		if x == a {
			return true
		}
	}
	return false
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Command cascadesim regenerates the tables and figures of Tang & Chanson
// (ICDE 2003) by trace-driven simulation.
//
// Usage:
//
//	cascadesim [flags]
//
// Examples:
//
//	cascadesim -list                        # what can be regenerated
//	cascadesim -exp all                     # every table, figure and study
//	cascadesim -exp fig6a,fig7a             # selected figures
//	cascadesim -exp radius -arch hierarchy  # MODULO radius study
//	cascadesim -exp figs -csv out/ -svg figs/ -html report.html
//	cascadesim -exp figs -baseline golden/  # regression drift detection
//	cascadesim -exp fig6a -replicate 5      # mean ± stdev over seeds
//	cascadesim -trace-requests 5            # dump 5 hop-by-hop protocol traces as JSON
//	cascadesim -span-dump 256 -span-sample 0.1  # dump per-node protocol-phase span rings as JSON
//
// The workload is synthetic (see DESIGN.md for the substitution rationale)
// unless -trace FILE replays a recorded trace in the cascade text format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"cascade"
)

// namedTable pairs a result table with its export name.
type namedTable struct {
	name  string
	table cascade.ResultTable
}

// simJob is one independently runnable unit of the requested experiments.
// Jobs produce their tables without touching shared state, so the -parallel
// mode can run them concurrently and still emit in definition order.
type simJob struct {
	label string
	run   func() ([]namedTable, error)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cascadesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exps    = flag.String("exp", "all", "experiments: all, figs, table1, radius, dcache, overhead, freshness-frontier, treeshape, zipf, costmodel, locality, levels, adaptivity, capacity, windowk, partial, analysis, chaos, ledger, rolling, or comma-separated figure IDs (fig6a..fig10b)")
		arch    = flag.String("arch", "both", "architecture for studies: enroute, hierarchy or both")
		sizes   = flag.String("sizes", "0.001,0.003,0.01,0.03,0.1", "relative cache sizes")
		schemes = flag.String("schemes", "LRU,MODULO(4),LNC-R,COORD", "schemes to compare")

		objects  = flag.Int("objects", 20000, "synthetic workload: object universe size")
		requests = flag.Int("requests", 400000, "synthetic workload: number of requests")
		clients  = flag.Int("clients", 2000, "synthetic workload: clients")
		servers  = flag.Int("servers", 200, "synthetic workload: origin servers")
		duration = flag.Float64("duration", 86400, "synthetic workload: span in seconds")
		zipf     = flag.Float64("zipf", 0.8, "synthetic workload: Zipf exponent")
		locality = flag.Float64("locality", 0, "synthetic workload: community-of-interest strength [0,1]")
		seed     = flag.Int64("seed", 1, "master seed (workload, topology, attachment)")

		traceFile = flag.String("trace", "", "replay a recorded trace file instead of the synthetic workload")
		traceReqs = flag.Int("trace-requests", 0, "dump N sampled per-request protocol traces as JSON (COORD scheme, first -arch and -sizes values) and exit")
		flightCap = flag.Int("flight-dump", 0, "replay with per-node flight recorders of capacity N, dump every node's ring as JSON (COORD scheme, first -arch and -sizes values) and exit")
		spanCap    = flag.Int("span-dump", 0, "replay with cascade-wide span tracing and per-node span rings of capacity N, dump every node's ring as JSON (COORD scheme, first -arch and -sizes values) and exit")
		spanSample = flag.Float64("span-sample", 1, "span-dump: tail-sampling rate in [0,1] for unremarkable traces (error/stale/slow traces are always kept)")
		csvDir    = flag.String("csv", "", "directory for CSV export (created if missing)")
		svgDir    = flag.String("svg", "", "directory for SVG figure export (created if missing)")
		htmlOut   = flag.String("html", "", "write a self-contained HTML report of every emitted table")
		chart     = flag.Bool("chart", false, "render ASCII charts next to the tables")
		md        = flag.Bool("md", false, "emit GitHub-flavored markdown instead of aligned text")
		replicate = flag.Int("replicate", 0, "rerun each figure under N seeds and report mean ± stdev")
		baseline  = flag.String("baseline", "", "directory of previously exported CSVs to compare against (5% tolerance)")
		chaosFrac = flag.Float64("chaos-frac", 0.2, "chaos study: fraction of nodes crashed mid-trace")
		chaosFail = flag.Float64("chaos-fail", 0.25, "chaos study: trace fraction at which nodes crash")
		chaosHeal = flag.Float64("chaos-heal", 0.6, "chaos study: trace fraction at which nodes recover")
		rollBatch = flag.Float64("rolling-batch", 0.1, "rolling study: fraction of nodes upgraded per batch")
		rollStart = flag.Float64("rolling-start", 0.25, "rolling study: trace fraction at which the upgrade begins")
		rollEnd   = flag.Float64("rolling-end", 0.75, "rolling study: trace fraction by which every batch has cycled")
		verbose   = flag.Bool("v", false, "print per-cell progress")
		list      = flag.Bool("list", false, "list available experiments, figures and schemes, then exit")
		jobs      = flag.Int("j", 0, "concurrent sweep cells (0 = GOMAXPROCS)")
		parallel  = flag.Bool("parallel", false, "run independent studies concurrently (output order is unchanged)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cascadesim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cascadesim: memprofile:", err)
			}
		}()
	}

	if *list {
		fmt.Println("figures:")
		for _, f := range cascade.Figures() {
			fmt.Printf("  %-8s %s\n", f.ID, f.Title)
		}
		fmt.Println("studies: table1 radius dcache overhead freshness-frontier costmodel treeshape zipf locality levels adaptivity capacity windowk partial analysis chaos ledger rolling")
		fmt.Printf("schemes: %s\n", strings.Join(cascade.SchemeNames(), ", "))
		return nil
	}

	sizeList, err := parseFloats(*sizes)
	if err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	cfg := cascade.ExperimentConfig{
		Trace: cascade.TraceConfig{
			Objects:  *objects,
			Requests: *requests,
			Clients:  *clients,
			Servers:  *servers,
			Duration: *duration,
			Seed:     *seed,
		},
		CacheSizes:  sizeList,
		Schemes:     splitList(*schemes),
		TopoSeed:    *seed,
		AttachSeed:  *seed,
		Concurrency: *jobs,
	}
	cfg.Trace.ZipfTheta = *zipf
	cfg.Trace.Locality = *locality
	if *traceFile != "" {
		w, err := cascade.FileWorkload(*traceFile)
		if err != nil {
			return err
		}
		cfg.Workload = w
		fmt.Fprintf(os.Stderr, "replaying %s: %d objects, %d requests\n",
			*traceFile, len(w.Catalog().Objects), w.Len())
	}

	var archs []cascade.Architecture
	switch *arch {
	case "enroute":
		archs = []cascade.Architecture{cascade.ArchEnRoute}
	case "hierarchy":
		archs = []cascade.Architecture{cascade.ArchHierarchy}
	case "both":
		archs = []cascade.Architecture{cascade.ArchEnRoute, cascade.ArchHierarchy}
	default:
		return fmt.Errorf("-arch: unknown architecture %q", *arch)
	}

	if *flightCap > 0 {
		// Flight-dump mode: replay the workload once through the coordinated
		// scheme with a flight recorder (and the invariant auditor) on every
		// node, then emit each node's retained protocol events as JSON.
		a, size := archs[0], sizeList[0]
		snaps, report, err := cascade.DumpFlightRecorders(a, cfg, size, *flightCap)
		if err != nil {
			return err
		}
		events := 0
		for _, s := range snaps {
			events += len(s.Events)
		}
		fmt.Fprintf(os.Stderr, "flight dump: %d nodes, %d retained events, %d audit violations (%s, COORD, cache size %.3g)\n",
			len(snaps), events, report.Total(), a, size)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snaps)
	}

	if *spanCap > 0 {
		// Span-dump mode: replay the workload once with cascade-wide span
		// tracing (the replay loop is the edge minting trace IDs), then emit
		// each node's ring of retained protocol-phase spans as JSON.
		a, size := archs[0], sizeList[0]
		snaps, err := cascade.DumpSpanRings(a, cfg, size, *spanCap, *spanSample)
		if err != nil {
			return err
		}
		spans := 0
		for _, s := range snaps {
			spans += len(s.Spans)
		}
		fmt.Fprintf(os.Stderr, "span dump: %d nodes, %d retained spans at sample rate %g (%s, COORD, cache size %.3g)\n",
			len(snaps), spans, *spanSample, a, size)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snaps)
	}

	if *traceReqs > 0 {
		// Trace-dump mode: replay the workload once through the coordinated
		// scheme, sample N requests and emit their hop-by-hop protocol
		// traces (both passes; see docs/OBSERVABILITY.md) as a JSON array.
		a, size := archs[0], sizeList[0]
		traces, err := cascade.SampleRequestTraces(a, cfg, size, *traceReqs)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sampled %d request traces (%s, COORD, cache size %.3g)\n",
			len(traces), a, size)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(traces)
	}

	wantTable1, wantRadius, wantDCache, wantOverhead, wantFreshness := false, false, false, false, false
	wantTreeShape, wantZipf, wantCostModel, wantLocality, wantLevels := false, false, false, false, false
	wantAdaptivity, wantCapacity, wantWindowK, wantPartial := false, false, false, false
	wantAnalysis, wantChaos, wantLedger, wantRolling := false, false, false, false
	var figIDs []string
	for _, e := range splitList(*exps) {
		switch e {
		case "all":
			wantTable1, wantRadius, wantDCache, wantOverhead, wantFreshness = true, true, true, true, true
			wantTreeShape, wantZipf, wantCostModel, wantLocality, wantLevels = true, true, true, true, true
			wantAdaptivity, wantCapacity, wantWindowK, wantPartial = true, true, true, true
			wantAnalysis = true
			figIDs = allFigureIDs()
		case "figs", "figures":
			figIDs = allFigureIDs()
		case "table1":
			wantTable1 = true
		case "radius":
			wantRadius = true
		case "dcache":
			wantDCache = true
		case "overhead":
			wantOverhead = true
		case "freshness", "freshness-frontier":
			wantFreshness = true
		case "treeshape":
			wantTreeShape = true
		case "zipf":
			wantZipf = true
		case "costmodel":
			wantCostModel = true
		case "locality":
			wantLocality = true
		case "levels":
			wantLevels = true
		case "adaptivity":
			wantAdaptivity = true
		case "capacity":
			wantCapacity = true
		case "windowk":
			wantWindowK = true
		case "partial":
			wantPartial = true
		case "analysis":
			wantAnalysis = true
		case "chaos":
			// Failure-aware replay through the live runtime; not part of
			// "all", which regenerates the paper's artifacts only.
			wantChaos = true
		case "ledger":
			// Predicted-vs-realized accounting replay; like chaos, an
			// operational diagnostic rather than a paper artifact, so not
			// part of "all".
			wantLedger = true
		case "rolling":
			// Rolling-upgrade replay through the live runtime's control
			// plane; an operational diagnostic, not part of "all".
			wantRolling = true
		default:
			if _, ok := cascade.FigureByID(e); !ok {
				return fmt.Errorf("-exp: unknown experiment %q", e)
			}
			figIDs = append(figIDs, e)
		}
	}

	driftTotal := 0
	var reportTables []cascade.ResultTable
	emit := func(name string, t cascade.ResultTable) error {
		if *htmlOut != "" {
			reportTables = append(reportTables, t)
		}
		if *md {
			if err := t.Markdown(os.Stdout); err != nil {
				return err
			}
		} else if err := t.Format(os.Stdout); err != nil {
			return err
		}
		if *baseline != "" {
			f, err := os.Open(filepath.Join(*baseline, name+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "baseline %s: %v\n", name, err)
			} else {
				drifts, err := cascade.CompareBaselineCSV(t, f, 0.05)
				f.Close()
				if err != nil {
					return fmt.Errorf("baseline %s: %w", name, err)
				}
				for _, d := range drifts {
					fmt.Fprintf(os.Stderr, "DRIFT %s %s\n", name, d)
				}
				driftTotal += len(drifts)
			}
		}
		if *chart {
			fmt.Println()
			if err := t.Chart(os.Stdout, 64, 16); err != nil {
				return err
			}
		}
		fmt.Println()
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*svgDir, name+".svg"))
			if err != nil {
				return err
			}
			if err := t.SVG(f, 560, 360); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return t.CSV(f)
	}

	// Each requested experiment becomes a job producing named tables. Jobs
	// are independent (each builds its own workload and simulators from
	// cfg), so -parallel may run them concurrently; tables are emitted in
	// job-definition order either way, keeping stdout byte-identical
	// between the two modes.
	var work []simJob
	addJob := func(label string, run func() ([]namedTable, error)) {
		work = append(work, simJob{label: label, run: run})
	}
	one := func(name string, f func() (cascade.ResultTable, error)) func() ([]namedTable, error) {
		return func() ([]namedTable, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []namedTable{{name, t}}, nil
		}
	}

	if wantTable1 {
		addJob("table1", one("table1", func() (cascade.ResultTable, error) {
			_, t := cascade.Table1(cfg)
			return t, nil
		}))
	}

	// Run at most one sweep per architecture and project all requested
	// figures from it.
	needed := map[cascade.Architecture][]cascade.Figure{}
	for _, id := range figIDs {
		f, _ := cascade.FigureByID(id)
		if archAllowed(f.Arch, archs) {
			needed[f.Arch] = append(needed[f.Arch], f)
		}
	}
	for _, a := range archs {
		a := a
		figs := needed[a]
		if len(figs) == 0 {
			continue
		}
		if *replicate > 1 {
			n := *replicate
			addJob("replicate "+string(a), func() ([]namedTable, error) {
				var out []namedTable
				for _, f := range figs {
					t, err := cascade.Replicate(a, cfg, f, n)
					if err != nil {
						return nil, err
					}
					out = append(out, namedTable{f.ID + "_replicated", t})
				}
				return out, nil
			})
			continue
		}
		addJob("sweep "+string(a), func() ([]namedTable, error) {
			fmt.Fprintf(os.Stderr, "running %s sweep: %d cache sizes x %d schemes...\n",
				a, len(cfg.CacheSizes), len(cfg.Schemes))
			progress := func(c cascade.SweepCell) {
				if *verbose {
					fmt.Fprintf(os.Stderr, "  %-10s size=%.3f%%  latency=%.4fs  bhr=%.3f\n",
						c.Scheme, c.CacheSize*100, c.Summary.AvgLatency, c.Summary.ByteHitRatio)
				}
			}
			sweep, err := cascade.RunSweep(a, cfg, progress)
			if err != nil {
				return nil, err
			}
			out := make([]namedTable, 0, len(figs))
			for _, f := range figs {
				out = append(out, namedTable{f.ID, sweep.Project(f)})
			}
			return out, nil
		})
	}

	for _, a := range archs {
		a := a
		if wantRadius {
			addJob("radius "+string(a), one("radius_"+string(a), func() (cascade.ResultTable, error) {
				return cascade.RadiusStudy(a, cfg, nil)
			}))
		}
		if wantDCache {
			addJob("dcache "+string(a), one("dcache_"+string(a), func() (cascade.ResultTable, error) {
				return cascade.DCacheStudy(a, cfg, nil, 0.01)
			}))
		}
		if wantOverhead {
			addJob("overhead "+string(a), one("overhead_"+string(a), func() (cascade.ResultTable, error) {
				return cascade.OverheadStudy(a, cfg)
			}))
		}
		if wantFreshness {
			addJob("freshness-frontier "+string(a), one("freshness_frontier_"+string(a), func() (cascade.ResultTable, error) {
				return cascade.FreshnessFrontier(a, cfg, nil, 0.01)
			}))
		}
		if wantCostModel {
			addJob("costmodel "+string(a), one("costmodel_"+string(a), func() (cascade.ResultTable, error) {
				return cascade.CostModelStudy(a, cfg, 0.01)
			}))
		}
	}

	if wantTreeShape {
		addJob("treeshape", one("treeshape", func() (cascade.ResultTable, error) {
			return cascade.TreeShapeStudy(cfg, nil, 0.01)
		}))
	}
	if wantZipf {
		addJob("zipf", one("zipf", func() (cascade.ResultTable, error) {
			return cascade.ZipfStudy(cfg, nil, 0.01)
		}))
	}
	if wantLocality {
		addJob("locality", one("locality", func() (cascade.ResultTable, error) {
			return cascade.LocalityStudy(cfg, nil, 0.01)
		}))
	}
	if wantLevels {
		addJob("levels", one("levels", func() (cascade.ResultTable, error) {
			return cascade.LevelStudy(cfg, 0.01)
		}))
	}
	if wantAdaptivity {
		addJob("adaptivity", one("adaptivity", func() (cascade.ResultTable, error) {
			return cascade.AdaptivityStudy(cascade.ArchEnRoute, cfg, 0.03, 12)
		}))
	}
	if wantCapacity {
		addJob("capacity", one("capacity", func() (cascade.ResultTable, error) {
			return cascade.CapacityStudy(cfg, 0.01)
		}))
	}
	if wantWindowK {
		addJob("windowk", one("windowk", func() (cascade.ResultTable, error) {
			return cascade.WindowKStudy(cascade.ArchEnRoute, cfg, nil, 0.01)
		}))
	}
	if wantPartial {
		addJob("partial", one("partial", func() (cascade.ResultTable, error) {
			return cascade.PartialDeploymentStudy(cascade.ArchEnRoute, cfg, nil, 0.01)
		}))
	}
	if wantAnalysis {
		addJob("analysis", one("analysis", func() (cascade.ResultTable, error) {
			return cascade.AnalysisStudy(cfg, 0.01)
		}))
	}
	if wantLedger {
		for _, a := range archs {
			a := a
			addJob("ledger "+string(a), one("ledger_"+string(a), func() (cascade.ResultTable, error) {
				t, report, err := cascade.LedgerStudy(a, cfg, sizeList[0])
				if err != nil {
					return cascade.ResultTable{}, err
				}
				for _, iv := range cascade.AuditInvariants() {
					fmt.Fprintf(os.Stderr, "audit %s %s: %d checks, %d violations\n",
						a, iv, report.Checks[iv.String()], report.Violations[iv.String()])
				}
				if n := report.Total(); n > 0 {
					return cascade.ResultTable{}, fmt.Errorf("ledger %s: %d audit violations", a, n)
				}
				return t, nil
			}))
		}
	}
	if wantChaos {
		for _, a := range archs {
			a := a
			addJob("chaos "+string(a), one("chaos_"+string(a), func() (cascade.ResultTable, error) {
				fmt.Fprintf(os.Stderr, "running %s chaos replay (%.0f%% of nodes crash at %.0f%% of trace)...\n",
					a, *chaosFrac*100, *chaosFail*100)
				res, t, err := cascade.ChaosStudy(cascade.ChaosConfig{
					Arch:         a,
					Base:         cfg,
					FailFraction: *chaosFrac,
					FailAt:       *chaosFail,
					HealAt:       *chaosHeal,
					Seed:         *seed,
				})
				if err != nil {
					return cascade.ResultTable{}, err
				}
				fmt.Fprintf(os.Stderr, "chaos %s: crashed nodes %v, routed around %d hops, %d degraded serves, recovery gap %.1f%%\n",
					a, res.Failed, res.Faulted.Stats.RoutedAround,
					res.Faulted.Stats.OriginFallbacks, res.RecoveryGap()*100)
				return t, nil
			}))
		}
	}
	if wantRolling {
		for _, a := range archs {
			a := a
			addJob("rolling "+string(a), one("rolling_"+string(a), func() (cascade.ResultTable, error) {
				fmt.Fprintf(os.Stderr, "running %s rolling upgrade (batches of %.0f%% over trace [%.0f%%, %.0f%%))...\n",
					a, *rollBatch*100, *rollStart*100, *rollEnd*100)
				res, t, err := cascade.RollingUpgradeStudy(cascade.RollingConfig{
					Arch:          a,
					Base:          cfg,
					BatchFraction: *rollBatch,
					StartAt:       *rollStart,
					EndAt:         *rollEnd,
				})
				if err != nil {
					return cascade.ResultTable{}, err
				}
				fmt.Fprintf(os.Stderr, "rolling %s: %d batches, epoch %d, routed around %d hops, dip %.2fpp, %d predictions / %d hits booked\n",
					a, len(res.Batches), res.FinalEpoch, res.Stats.RoutedAround,
					res.HitDip(), res.Predictions, res.Hits)
				if res.AuditViolations > 0 {
					return cascade.ResultTable{}, fmt.Errorf("rolling %s: %d audit violations", a, res.AuditViolations)
				}
				if dip := res.HitDip(); dip > 5 {
					return cascade.ResultTable{}, fmt.Errorf("rolling %s: hit-rate dip %.2fpp exceeds 5pp", a, dip)
				}
				if res.Predictions == 0 {
					return cascade.ResultTable{}, fmt.Errorf("rolling %s: cost ledger booked nothing", a)
				}
				return t, nil
			}))
		}
	}

	if err := runJobs(work, *parallel, emit); err != nil {
		return err
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cascade.WriteHTMLReport(f, "Coordinated cascaded caching — results", reportTables); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d tables)\n", *htmlOut, len(reportTables))
	}
	if *baseline != "" && driftTotal > 0 {
		return fmt.Errorf("%d cells drifted beyond tolerance", driftTotal)
	}
	return nil
}

// runJobs executes the experiment jobs — sequentially, or concurrently when
// parallel is set — and hands every produced table to emit in job-definition
// order, so both modes write identical bytes to stdout. The first job error
// (in definition order) is returned; later tables are not emitted.
func runJobs(jobs []simJob, parallel bool, emit func(string, cascade.ResultTable) error) error {
	results := make([][]namedTable, len(jobs))
	errs := make([]error, len(jobs))
	if parallel {
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for i := range jobs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i], errs[i] = jobs[i].run()
			}(i)
		}
		wg.Wait()
	} else {
		for i := range jobs {
			results[i], errs[i] = jobs[i].run()
			if errs[i] != nil {
				break
			}
		}
	}
	for i, j := range jobs {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", j.label, errs[i])
		}
		for _, nt := range results[i] {
			if err := emit(nt.name, nt.table); err != nil {
				return err
			}
		}
	}
	return nil
}

func allFigureIDs() []string {
	var ids []string
	for _, f := range cascade.Figures() {
		ids = append(ids, f.ID)
	}
	return ids
}

func archAllowed(a cascade.Architecture, allowed []cascade.Architecture) bool {
	for _, x := range allowed {
		if x == a {
			return true
		}
	}
	return false
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

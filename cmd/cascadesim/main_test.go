package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cascade"
)

func TestSplitList(t *testing.T) {
	cases := map[string][]string{
		"a,b,c":    {"a", "b", "c"},
		" a , ,b ": {"a", "b"},
		"":         nil,
		"LRU":      {"LRU"},
		"x,,y,":    {"x", "y"},
	}
	for in, want := range cases {
		if got := splitList(in); !reflect.DeepEqual(got, want) {
			t.Fatalf("splitList(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.001, 0.1,1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0.001, 0.1, 1}) {
		t.Fatalf("parseFloats = %v", got)
	}
	if _, err := parseFloats("0.1,zebra"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestArchAllowed(t *testing.T) {
	both := []cascade.Architecture{cascade.ArchEnRoute, cascade.ArchHierarchy}
	if !archAllowed(cascade.ArchEnRoute, both) || !archAllowed(cascade.ArchHierarchy, both) {
		t.Fatal("allowed arch rejected")
	}
	if archAllowed(cascade.ArchEnRoute, []cascade.Architecture{cascade.ArchHierarchy}) {
		t.Fatal("disallowed arch accepted")
	}
}

func TestAllFigureIDsCoverRegistry(t *testing.T) {
	ids := allFigureIDs()
	if len(ids) != len(cascade.Figures()) {
		t.Fatalf("ids = %d, registry = %d", len(ids), len(cascade.Figures()))
	}
	for _, id := range ids {
		if _, ok := cascade.FigureByID(id); !ok {
			t.Fatalf("unknown id %s", id)
		}
	}
}

// TestRunEndToEnd drives the real CLI entry point (flag parsing included)
// at miniature scale: figures, studies, CSV export, markdown and baseline
// comparison.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	os.Stdout = devnull

	common := []string{
		"-objects", "200", "-requests", "4000", "-clients", "20",
		"-servers", "10", "-duration", "1200", "-sizes", "0.02",
	}
	invoke := func(extra ...string) error {
		flag.CommandLine = flag.NewFlagSet("cascadesim", flag.PanicOnError)
		os.Args = append(append([]string{"cascadesim"}, common...), extra...)
		return run()
	}

	if err := invoke("-exp", "fig6a,table1", "-arch", "enroute", "-csv", dir, "-md", "-chart",
		"-svg", dir, "-html", filepath.Join(dir, "report.html")); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig6a.csv", "fig6a.svg", "report.html"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("%s not exported: %v", f, err)
		}
	}
	// Baseline comparison against the just-written CSVs: no drift.
	if err := invoke("-exp", "fig6a", "-arch", "enroute", "-baseline", dir); err != nil {
		t.Fatal(err)
	}
	// Different seed drifts → error.
	if err := invoke("-exp", "fig6a", "-arch", "enroute", "-baseline", dir, "-seed", "9"); err == nil {
		t.Fatal("drifted run did not fail")
	}
	// Studies on the hierarchy.
	if err := invoke("-exp", "radius,levels,capacity", "-arch", "hierarchy"); err != nil {
		t.Fatal(err)
	}
	// Replication path.
	if err := invoke("-exp", "fig9a", "-arch", "hierarchy", "-replicate", "2"); err != nil {
		t.Fatal(err)
	}
	// Bad inputs.
	if err := invoke("-exp", "nonsense"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := invoke("-arch", "moon"); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if err := invoke("-sizes", "zebra"); err == nil {
		t.Fatal("bad sizes accepted")
	}
	if err := invoke("-trace", filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing trace accepted")
	}
}

// TestParallelMatchesSequential asserts the -parallel study runner is
// invisible in the output: the same experiment set must print byte-identical
// results with and without it.
func TestParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()

	capture := func(name string, extra ...string) []byte {
		out, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = out
		flag.CommandLine = flag.NewFlagSet("cascadesim", flag.PanicOnError)
		os.Args = append([]string{"cascadesim",
			"-objects", "200", "-requests", "4000", "-clients", "20",
			"-servers", "10", "-duration", "1200", "-sizes", "0.02",
			"-exp", "radius,zipf,levels", "-arch", "hierarchy"}, extra...)
		runErr := run()
		out.Close()
		os.Stdout = oldStdout
		if runErr != nil {
			t.Fatal(runErr)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	seq := capture("seq.out")
	par := capture("par.out", "-parallel")
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

func TestRunList(t *testing.T) {
	oldArgs, oldStdout := os.Args, os.Stdout
	defer func() { os.Args, os.Stdout = oldArgs, oldStdout }()
	r, w, _ := os.Pipe()
	os.Stdout = w
	flag.CommandLine = flag.NewFlagSet("cascadesim", flag.PanicOnError)
	os.Args = []string{"cascadesim", "-list"}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	out, _ := io.ReadAll(r)
	for _, want := range []string{"fig6a", "COORD", "studies:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

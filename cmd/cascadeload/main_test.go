package main

import (
	"fmt"
	"math/rand"
	"testing"
)

func baseConfig() config {
	return config{
		objects:  100,
		zipfS:    1.2,
		users:    4,
		requests: 100,
	}
}

func TestValidateRejectsDegenerateWorkloads(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config)
	}{
		{"zipf at 1", func(c *config) { c.zipfS = 1 }},
		{"zipf below 1", func(c *config) { c.zipfS = 0.7 }},
		{"zero objects", func(c *config) { c.objects = 0 }},
		{"one object", func(c *config) { c.objects = 1 }},
		{"negative objects", func(c *config) { c.objects = -5 }},
		{"zero requests", func(c *config) { c.requests = 0 }},
		{"zero users", func(c *config) { c.users = 0 }},
		{"negative warmup", func(c *config) { c.warmup = -1 }},
		{"negative rate", func(c *config) { c.rate = -10 }},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mutate(&cfg)
		if err := validate(&cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	good := baseConfig()
	if err := validate(&good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Every accepted configuration must construct a real Zipf generator —
	// the nil return is exactly what validate exists to preclude.
	if z := newZipf(rand.New(rand.NewSource(1)), good.zipfS, good.objects); z == nil {
		t.Fatal("newZipf returned nil for a validated config")
	}
}

// draws materializes the first n object IDs of one (seed, stream) workload.
func draws(seed int64, stream uint64, zipfS float64, objects, n int) []uint64 {
	rng := rand.New(rand.NewSource(mixSeed(seed, stream)))
	z := newZipf(rng, zipfS, objects)
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

func TestSeedStreamsDeterministicAndDisjoint(t *testing.T) {
	const n = 64
	// Deterministic: the same (seed, stream) replays the same sequence.
	a := draws(1, streamWarmup, 1.2, 5000, n)
	b := draws(1, streamWarmup, 1.2, 5000, n)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same (seed, stream) produced different sequences")
	}

	// Pairwise disjoint: across a spread of seeds and streams no two
	// generators replay each other. The old additive derivation
	// (seed + w + 7919) failed exactly this — worker w of seed s collided
	// with the warmup stream of seed s + w + 7919.
	type src struct {
		seed   int64
		stream uint64
	}
	var srcs []src
	for seed := int64(1); seed <= 4; seed++ {
		srcs = append(srcs, src{seed, streamWarmup}, src{seed, streamOpenLoop})
		for w := uint64(0); w < 4; w++ {
			srcs = append(srcs, src{seed, streamWorker0 + w})
		}
	}
	seqs := make(map[string]src, len(srcs))
	for _, s := range srcs {
		key := fmt.Sprint(draws(s.seed, s.stream, 1.2, 5000, n))
		if prev, dup := seqs[key]; dup {
			t.Fatalf("(seed %d, stream %d) replays (seed %d, stream %d)", s.seed, s.stream, prev.seed, prev.stream)
		}
		seqs[key] = s
	}

	// The regression case from the old derivation, pinned explicitly:
	// worker 0 of seed s must not replay the warmup of seed s+7919.
	warm := draws(1+7919, streamWarmup, 1.2, 5000, n)
	work := draws(1, streamWorker0, 1.2, 5000, n)
	if fmt.Sprint(warm) == fmt.Sprint(work) {
		t.Fatal("worker stream replays a shifted seed's warmup stream")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"1024": 1024,
		"4KB":  4 << 10,
		"2MB":  2 << 20,
		"1GB":  1 << 30,
		"512B": 512,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-1", "abc", "-4KB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) accepted", bad)
		}
	}
}

// Command cascadeload drives a coordinated gateway chain with a Zipf
// workload and reports latency percentiles, throughput and hit ratio in a
// form the repository's regression gate understands.
//
// Two targets:
//
//   - live mode (-target): requests go to a running cascadegw front node,
//     hit ratio comes from scraping its /cascade/stats before and after;
//   - in-process mode (default): the tool assembles an origin plus a chain
//     of -nodes gateways on loopback listeners, so the chain hit ratio is
//     exact (one minus the fraction of requests that reached the origin)
//     and `make loadtest` needs no running processes.
//
// Two arrival disciplines:
//
//   - closed loop (default): -users workers, each issuing its next request
//     the moment the previous one completes — throughput is a result;
//   - open loop (-rate): requests launch on a fixed schedule regardless of
//     completions, the discipline that actually exposes queueing collapse.
//
// The -bench-out file contains go-test-bench formatted lines
// (BenchmarkCascadeLoadP50/P99/P999/Throughput, all ns/op, lower is
// better), which cmd/benchcheck gates against BENCH_2.json: a latency SLO
// regression fails `make loadtest` exactly like a hot-path regression
// fails `make bench-check`. See docs/PERFORMANCE.md for methodology.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cascadeload:", err)
		os.Exit(1)
	}
}

type config struct {
	target   string
	nodes    int
	capacity string
	objSize  int
	dEntries int
	shards   int
	textOnly bool

	objects    int
	zipfS      float64
	writeRatio float64
	users      int
	rate       float64
	requests   int
	duration   time.Duration
	warmup     int
	seed       int64

	benchOut   string
	cpuProfile string
	memProfile string
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.target, "target", "", "front gateway base URL (empty: build an in-process chain)")
	flag.IntVar(&cfg.nodes, "nodes", 3, "in-process: gateway chain length")
	flag.StringVar(&cfg.capacity, "capacity", "4MB", "in-process: cache capacity per gateway")
	flag.IntVar(&cfg.objSize, "object-size", 4096, "in-process: origin payload bytes per object")
	flag.IntVar(&cfg.dEntries, "dcache", 4096, "in-process: descriptor-cache entries per gateway")
	flag.IntVar(&cfg.shards, "shards", 1, "in-process: shards per gateway")
	flag.BoolVar(&cfg.textOnly, "text-headers", false, "in-process: disable binary wire framing")
	flag.IntVar(&cfg.objects, "objects", 5000, "catalog size (object IDs 0..n-1)")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.2, "Zipf skew s (must be > 1)")
	flag.Float64Var(&cfg.writeRatio, "write-ratio", 0, "fraction of measured requests issued as origin writes (invalidations); enables CAS-strict coherency on the in-process chain")
	flag.IntVar(&cfg.users, "users", 8, "closed loop: concurrent users")
	flag.Float64Var(&cfg.rate, "rate", 0, "open loop: arrivals per second (0: closed loop)")
	flag.IntVar(&cfg.requests, "requests", 5000, "measured requests to issue")
	flag.DurationVar(&cfg.duration, "duration", 0, "stop after this wall time even if -requests remain")
	flag.IntVar(&cfg.warmup, "warmup", 1000, "unmeasured warmup requests issued first")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	flag.StringVar(&cfg.benchOut, "bench-out", "", "also write the benchmark-format result lines to this file")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the measured phase to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	if err := validate(&cfg); err != nil {
		return err
	}

	front := cfg.target
	var originFetches *atomic.Int64
	if front == "" {
		url, counter, closeAll, err := buildChain(cfg)
		if err != nil {
			return err
		}
		defer closeAll()
		front, originFetches = url, counter
		coh := ""
		if cfg.writeRatio > 0 {
			coh = ", CAS-strict coherency"
		}
		fmt.Fprintf(os.Stderr, "cascadeload: in-process chain of %d gateways (capacity %s, %d shards, origin %d B objects%s)\n",
			cfg.nodes, cfg.capacity, cfg.shards, cfg.objSize, coh)
	}
	front = strings.TrimRight(front, "/")

	client := &http.Client{Timeout: 30 * time.Second}
	floors := newGenFloors(cfg.objects)

	// Warmup: sequential, unmeasured, so the measured phase sees caches in
	// their steady regime rather than cold-start compulsory misses.
	warmRng := rand.New(rand.NewSource(mixSeed(cfg.seed, streamWarmup)))
	warmZipf := newZipf(warmRng, cfg.zipfS, cfg.objects)
	for i := 0; i < cfg.warmup; i++ {
		if _, err := doGet(client, front, int(warmZipf.Uint64()), floors); err != nil {
			return fmt.Errorf("warmup request %d: %w", i, err)
		}
	}

	statsBefore, statsErr := scrapeStats(client, front)
	var originBefore int64
	if originFetches != nil {
		originBefore = originFetches.Load()
	}

	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var res *result
	var err error
	start := time.Now()
	if cfg.rate > 0 {
		res, err = openLoop(cfg, client, front, floors)
	} else {
		res, err = closedLoop(cfg, client, front, floors)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if cfg.memProfile != "" {
		f, ferr := os.Create(cfg.memProfile)
		if ferr != nil {
			return ferr
		}
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			f.Close()
			return werr
		}
		f.Close()
	}

	// Hit ratio: exact chain-wide in in-process mode, front-node delta from
	// /cascade/stats in live mode.
	hitRatio, hitSource := -1.0, "unavailable"
	if originFetches != nil {
		missed := originFetches.Load() - originBefore
		hitRatio = 1 - float64(missed)/float64(res.count)
		hitSource = "chain (origin fetch count)"
	} else if statsErr == nil {
		if after, err := scrapeStats(client, front); err == nil {
			dh := after.Hits - statsBefore.Hits
			dm := after.Misses - statsBefore.Misses
			if dh+dm > 0 {
				hitRatio = float64(dh) / float64(dh+dm)
				hitSource = "front node (/cascade/stats)"
			}
		}
	}

	if err := report(cfg, res, elapsed, hitRatio, hitSource); err != nil {
		return err
	}
	// Under a mixed read/write workload the chain runs CAS-strict: a served
	// generation older than a write the generator had already completed is
	// a coherency SLO violation, and the run fails like a latency breach.
	if res.stale > 0 {
		return fmt.Errorf("%d responses served below a completed write's generation (CAS-strict SLO violation)", res.stale)
	}
	return nil
}

// validate rejects flag combinations outside the workload generator's
// domain up front, with the offending value in the message. rand.NewZipf
// silently returns nil for s <= 1 or imax < 1 (i.e. fewer than two
// objects), which used to surface as a nil dereference deep in the warmup
// loop instead of a usage error.
func validate(cfg *config) error {
	if cfg.zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1 (got %g)", cfg.zipfS)
	}
	if cfg.objects < 2 {
		return fmt.Errorf("-objects must be at least 2 for a Zipf catalog (got %d)", cfg.objects)
	}
	if cfg.requests < 1 || cfg.users < 1 {
		return fmt.Errorf("-requests and -users must be positive")
	}
	if cfg.warmup < 0 {
		return fmt.Errorf("-warmup must not be negative (got %d)", cfg.warmup)
	}
	if cfg.rate < 0 {
		return fmt.Errorf("-rate must not be negative (got %g)", cfg.rate)
	}
	if cfg.writeRatio < 0 || cfg.writeRatio >= 1 {
		return fmt.Errorf("-write-ratio must be in [0, 1) (got %g)", cfg.writeRatio)
	}
	return nil
}

// Stream indices for mixSeed: every RNG consumer gets its own stream, so no
// two phases or workers ever share a generator state.
const (
	streamWarmup   = 0
	streamOpenLoop = 1
	streamWorker0  = 2 // closed-loop worker w uses streamWorker0 + w
)

// mixSeed derives the seed for one RNG stream from the user's -seed via a
// splitmix64 finalizer. Additive offsets (the old seed+w+7919) made worker
// k's stream identical to the warmup stream of seed+k+7919 — adjacent seeds
// replayed each other's request sequences shifted by one worker. The
// finalizer's avalanche makes every (seed, stream) pair an independent
// sequence.
func mixSeed(seed int64, stream uint64) int64 {
	z := uint64(seed) ^ (stream * 0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// newZipf builds one workload stream. validate guarantees the parameters
// are inside rand.NewZipf's domain; a nil return here is a programming
// error surfaced immediately instead of a deferred nil dereference.
func newZipf(rng *rand.Rand, s float64, objects int) *rand.Zipf {
	z := rand.NewZipf(rng, s, 1, uint64(objects-1))
	if z == nil {
		panic(fmt.Sprintf("cascadeload: rand.NewZipf rejected s=%g objects=%d", s, objects))
	}
	return z
}

// result holds the measured phase's raw latencies (nanoseconds).
type result struct {
	latencies []int64
	count     int
	errors    int
	writes    int // invalidations issued (counted inside count)
	stale     int // reads served below a completed write's generation
	dropped   int // open loop: arrivals skipped because inflight was saturated
}

// genFloors tracks, per object, the highest generation any completed write
// has been acknowledged at — the generator's own read-your-writes floor. A
// read that later serves below it caught the cascade lying about coherency.
type genFloors struct {
	gens []atomic.Uint64
}

func newGenFloors(objects int) *genFloors {
	return &genFloors{gens: make([]atomic.Uint64, objects)}
}

func (f *genFloors) load(obj int) uint64 { return f.gens[obj].Load() }

func (f *genFloors) raise(obj int, gen uint64) {
	for {
		cur := f.gens[obj].Load()
		if gen <= cur || f.gens[obj].CompareAndSwap(cur, gen) {
			return
		}
	}
}

// closedLoop runs cfg.users workers, each issuing its next request as soon
// as the previous completes. Each worker gets an independent Zipf stream;
// with -write-ratio set, that fraction of its requests become origin
// writes (invalidations) instead of reads.
func closedLoop(cfg config, client *http.Client, front string, floors *genFloors) (*result, error) {
	var (
		issued   atomic.Int64
		deadline time.Time
	)
	if cfg.duration > 0 {
		deadline = time.Now().Add(cfg.duration)
	}
	perWorker := make([][]int64, cfg.users)
	errCounts := make([]int, cfg.users)
	writeCounts := make([]int, cfg.users)
	staleCounts := make([]int, cfg.users)
	var wg sync.WaitGroup
	for w := 0; w < cfg.users; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(mixSeed(cfg.seed, streamWorker0+uint64(w))))
			zipf := newZipf(rng, cfg.zipfS, cfg.objects)
			for {
				if issued.Add(1) > int64(cfg.requests) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				obj := int(zipf.Uint64())
				write := cfg.writeRatio > 0 && rng.Float64() < cfg.writeRatio
				t0 := time.Now()
				if write {
					if err := doWrite(client, front, obj, floors); err != nil {
						errCounts[w]++
						continue
					}
					writeCounts[w]++
				} else {
					stale, err := doGet(client, front, obj, floors)
					if err != nil {
						errCounts[w]++
						continue
					}
					if stale {
						staleCounts[w]++
					}
				}
				perWorker[w] = append(perWorker[w], time.Since(t0).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	res := &result{}
	for w := range perWorker {
		res.latencies = append(res.latencies, perWorker[w]...)
		res.errors += errCounts[w]
		res.writes += writeCounts[w]
		res.stale += staleCounts[w]
	}
	res.count = len(res.latencies)
	if res.count == 0 {
		return nil, fmt.Errorf("closed loop: no request succeeded (%d errors)", res.errors)
	}
	return res, nil
}

// openLoop launches arrivals on a fixed schedule regardless of completions.
// Inflight is capped at a generous bound so a stalled server degrades into
// counted drops instead of an unbounded goroutine pile-up; drops are
// reported, never silently discarded.
func openLoop(cfg config, client *http.Client, front string, floors *genFloors) (*result, error) {
	const maxInflight = 4096
	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	rng := rand.New(rand.NewSource(mixSeed(cfg.seed, streamOpenLoop)))
	zipf := newZipf(rng, cfg.zipfS, cfg.objects)

	var (
		mu        sync.Mutex
		latencies []int64
		errors    int
		writes    int
		stale     int
		dropped   int
		inflight  atomic.Int64
		wg        sync.WaitGroup
	)
	deadline := time.Time{}
	if cfg.duration > 0 {
		deadline = time.Now().Add(cfg.duration)
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for i := 0; i < cfg.requests; i++ {
		<-ticker.C
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		obj := int(zipf.Uint64())
		write := cfg.writeRatio > 0 && rng.Float64() < cfg.writeRatio
		if inflight.Load() >= maxInflight {
			dropped++
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func(obj int, write bool) {
			defer wg.Done()
			defer inflight.Add(-1)
			t0 := time.Now()
			var err error
			wasStale := false
			if write {
				err = doWrite(client, front, obj, floors)
			} else {
				wasStale, err = doGet(client, front, obj, floors)
			}
			d := time.Since(t0).Nanoseconds()
			mu.Lock()
			switch {
			case err != nil:
				errors++
			default:
				latencies = append(latencies, d)
				if write {
					writes++
				}
				if wasStale {
					stale++
				}
			}
			mu.Unlock()
		}(obj, write)
	}
	wg.Wait()
	if len(latencies) == 0 {
		return nil, fmt.Errorf("open loop: no request succeeded (%d errors, %d dropped)", errors, dropped)
	}
	return &result{latencies: latencies, count: len(latencies), errors: errors,
		writes: writes, stale: stale, dropped: dropped}, nil
}

// doGet fetches one object and drains the body (keep-alive reuse). The
// request carries the generator's own floor for the object as a CAS read
// floor; the response's generation is checked against the floor as it stood
// when the request was issued, so a write completing mid-flight can never
// count as a false positive.
func doGet(client *http.Client, front string, obj int, floors *genFloors) (stale bool, err error) {
	floor := floors.load(obj)
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/objects/%d", front, obj), nil)
	if err != nil {
		return false, err
	}
	if floor > 0 {
		req.Header.Set(cascade.HTTPHeaderGen, strconv.FormatUint(floor, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var gen uint64
	if h := resp.Header.Get(cascade.HTTPHeaderGen); h != "" {
		if gen, err = strconv.ParseUint(h, 10, 64); err != nil {
			return false, fmt.Errorf("bad %s header %q", cascade.HTTPHeaderGen, h)
		}
	}
	return gen < floor, nil
}

// doWrite bumps one object's generation through the chain's admin write
// path and raises the generator's floor to the acknowledged generation.
func doWrite(client *http.Client, front string, obj int, floors *genFloors) error {
	resp, err := client.Post(fmt.Sprintf("%s/cascade/admin/invalidate?obj=%d", front, obj), "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("invalidate status %d", resp.StatusCode)
	}
	var rep struct {
		Gen uint64 `json:"gen"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	floors.raise(obj, rep.Gen)
	return nil
}

// buildChain assembles origin ← gateway_(n-1) ← … ← gateway_0 on loopback
// listeners and returns the front URL, the origin fetch counter, and a
// closer. Node IDs run front-to-back 0..n-1 matching protocol hop order.
func buildChain(cfg config) (string, *atomic.Int64, func(), error) {
	capBytes, err := parseBytes(cfg.capacity)
	if err != nil {
		return "", nil, nil, fmt.Errorf("-capacity: %w", err)
	}
	size := cfg.objSize
	origin := cascade.NewHTTPOrigin(func(cascade.ObjectID) int { return size })
	origin.DisableBinaryFraming = cfg.textOnly
	if cfg.writeRatio > 0 {
		// Writes need a generation authority at the origin; the chain runs
		// CAS-strict so a served stale response is a hard failure.
		origin.Authority = cascade.NewCoherencyAuthority()
	}
	var fetches atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/objects/") {
			fetches.Add(1)
		}
		origin.ServeHTTP(w, r)
	})
	servers := []*httptest.Server{httptest.NewServer(counted)}
	upstream := servers[0].URL
	clock := cascade.WallClock()
	for i := cfg.nodes - 1; i >= 0; i-- {
		node := cascade.NewHTTPCacheNode(cascade.NodeID(i), upstream, 0.1, capBytes, cfg.dEntries, clock)
		node.DisableBinaryFraming = cfg.textOnly
		if cfg.writeRatio > 0 {
			node.EnableCoherency(cascade.CoherencyCAS)
		}
		if cfg.shards > 1 {
			node.SetShards(cfg.shards)
		}
		srv := httptest.NewServer(node)
		servers = append(servers, srv)
		upstream = srv.URL
	}
	closeAll := func() {
		for i := len(servers) - 1; i >= 0; i-- {
			servers[i].Close()
		}
	}
	return upstream, &fetches, closeAll, nil
}

// nodeStats is the slice of the /cascade/stats payload the tool consumes.
type nodeStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

func scrapeStats(client *http.Client, front string) (nodeStats, error) {
	var st nodeStats
	resp, err := client.Get(front + "/cascade/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// report prints the human summary to stderr and the machine-readable
// benchmark lines to stdout (and -bench-out). The benchmark lines are what
// `make loadtest` pipes into benchcheck, so their names and units are a
// contract: ns/op, lower is better, gated like any other benchmark.
func report(cfg config, res *result, elapsed time.Duration, hitRatio float64, hitSource string) error {
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	p := func(q float64) int64 {
		idx := int(q*float64(len(res.latencies))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(res.latencies) {
			idx = len(res.latencies) - 1
		}
		return res.latencies[idx]
	}
	p50, p99, p999 := p(0.50), p(0.99), p(0.999)
	nsPerReq := float64(elapsed.Nanoseconds()) / float64(res.count)
	rps := float64(res.count) / elapsed.Seconds()

	mode := fmt.Sprintf("closed loop, %d users", cfg.users)
	if cfg.rate > 0 {
		mode = fmt.Sprintf("open loop, %.0f req/s offered", cfg.rate)
	}
	fmt.Fprintf(os.Stderr, "cascadeload: %s; %d requests in %v (%.0f req/s), %d errors",
		mode, res.count, elapsed.Round(time.Millisecond), rps, res.errors)
	if res.dropped > 0 {
		fmt.Fprintf(os.Stderr, ", %d dropped at the inflight cap", res.dropped)
	}
	fmt.Fprintln(os.Stderr)
	if cfg.writeRatio > 0 {
		fmt.Fprintf(os.Stderr, "cascadeload: %d writes issued, %d stale responses (CAS-strict SLO: 0 allowed)\n",
			res.writes, res.stale)
	}
	fmt.Fprintf(os.Stderr, "cascadeload: latency p50 %v  p99 %v  p999 %v\n",
		time.Duration(p50).Round(time.Microsecond),
		time.Duration(p99).Round(time.Microsecond),
		time.Duration(p999).Round(time.Microsecond))
	if hitRatio >= 0 {
		fmt.Fprintf(os.Stderr, "cascadeload: hit ratio %.3f [%s]\n", hitRatio, hitSource)
	} else {
		fmt.Fprintf(os.Stderr, "cascadeload: hit ratio %s\n", hitSource)
	}

	lines := fmt.Sprintf(
		"BenchmarkCascadeLoadP50 %d %d ns/op\nBenchmarkCascadeLoadP99 %d %d ns/op\nBenchmarkCascadeLoadP999 %d %d ns/op\nBenchmarkCascadeLoadThroughput %d %.0f ns/op\n",
		res.count, p50, res.count, p99, res.count, p999, res.count, nsPerReq)
	fmt.Print(lines)
	if cfg.benchOut != "" {
		if err := os.WriteFile(cfg.benchOut, []byte(lines), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// parseBytes parses human-friendly sizes: plain bytes, or KB/MB/GB (binary
// multiples), matching cascadegw's flag syntax.
func parseBytes(s string) (int64, error) {
	in := strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(in, "GB"):
		mult, in = 1<<30, strings.TrimSuffix(in, "GB")
	case strings.HasSuffix(in, "MB"):
		mult, in = 1<<20, strings.TrimSuffix(in, "MB")
	case strings.HasSuffix(in, "KB"):
		mult, in = 1<<10, strings.TrimSuffix(in, "KB")
	case strings.HasSuffix(in, "B"):
		in = strings.TrimSuffix(in, "B")
	}
	var n int64
	if _, err := fmt.Sscanf(strings.TrimSpace(in), "%d", &n); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	return n * mult, nil
}

// Command observesmoke is the `make observe` driver: it builds cascadegw,
// boots an origin → gateway chain on ephemeral ports with the -metrics
// listener enabled, issues a few requests, and asserts that the Prometheus
// scrape carries the key gateway series — including every
// cascade_audit_*_total invariant series at zero violations on this clean
// run, and the cascade_ledger_* accounting series — that the
// /cascade/debug/flight endpoint dumps the protocol flight recorder,
// that the origin's decision-side auditor reports checks with
// zero violations on its own /cascade/metrics, and that the
// X-Cascade-Trace debug header round-trips a JSON event log of both
// protocol passes. Exit status 0 means the observability surface of the
// deployed binary works end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cascade/internal/audit"
	"cascade/internal/flightrec"
	"cascade/internal/reqtrace"
	"cascade/internal/span"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "observesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("observesmoke: PASS")
}

func run() error {
	goBin := flag.String("go", "go", "go toolchain binary used to build cascadegw")
	keepLogs := flag.Bool("v", false, "stream gateway stderr instead of discarding it")
	flag.Parse()

	tmp, err := os.MkdirTemp("", "observesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "cascadegw")
	build := exec.Command(*goBin, "build", "-o", bin, "./cmd/cascadegw")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building cascadegw: %w", err)
	}

	originAddr, err := freeAddr()
	if err != nil {
		return err
	}
	gwAddr, err := freeAddr()
	if err != nil {
		return err
	}
	metricsAddr, err := freeAddr()
	if err != nil {
		return err
	}

	logs := io.Discard
	if *keepLogs {
		logs = os.Stderr
	}
	origin, err := start(bin, logs, "-origin", "-listen", originAddr, "-object-size", "2048",
		"-coherency", "cas")
	if err != nil {
		return err
	}
	defer stop(origin)
	gw, err := start(bin, logs,
		"-listen", gwAddr, "-upstream", "http://"+originAddr,
		"-id", "0", "-capacity", "1MB", "-metrics", metricsAddr,
		"-coherency", "cas", "-spans", "1", "-span-capacity", "128")
	if err != nil {
		return err
	}
	defer stop(gw)

	for _, addr := range []string{originAddr, gwAddr, metricsAddr} {
		if err := waitListening(addr, 5*time.Second); err != nil {
			return err
		}
	}

	// Drive a little traffic: a cold miss, then repeats that may hit once
	// the placement decision lands a copy at the gateway.
	for i := 0; i < 4; i++ {
		resp, err := http.Get("http://" + gwAddr + "/objects/7")
		if err != nil {
			return fmt.Errorf("GET objects/7: %w", err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	// One write through the chain: the origin bumps the generation, the
	// gateway applies the invalidation on the unwind — the coherency series
	// and the invalidate flight events below must reflect it.
	wresp, err := http.Post("http://"+gwAddr+"/cascade/admin/invalidate?obj=7", "application/json", nil)
	if err != nil {
		return fmt.Errorf("POST invalidate: %w", err)
	}
	io.Copy(io.Discard, wresp.Body) //nolint:errcheck
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST invalidate: status %d", wresp.StatusCode)
	}
	// Refetch at the new generation.
	rresp, err := http.Get("http://" + gwAddr + "/objects/7")
	if err != nil {
		return fmt.Errorf("GET objects/7 after write: %w", err)
	}
	io.Copy(io.Discard, rresp.Body) //nolint:errcheck
	rresp.Body.Close()
	if g := rresp.Header.Get("X-Cascade-Gen"); g != "1" {
		return fmt.Errorf("post-write read served generation %q, want 1", g)
	}

	// The dedicated -metrics listener and the public /cascade/metrics
	// route must both serve the key series.
	for _, url := range []string{
		"http://" + metricsAddr + "/metrics",
		"http://" + gwAddr + "/cascade/metrics",
	} {
		body, err := fetch(url)
		if err != nil {
			return err
		}
		series := []string{
			`cascade_gw_hits_total{node="0"}`,
			`cascade_gw_misses_total{node="0"}`,
			`cascade_gw_breaker_state{node="0",upstream="`,
			`cascade_gw_cache_used_bytes{node="0"}`,
			`cascade_gw_dcache_descriptors{node="0"}`,
			`cascade_gw_trace_truncations_total{node="0"}`,
			`cascade_gw_request_seconds{node="0",quantile="0.99"}`,
			`cascade_gw_request_seconds_bucket{node="0",le="+Inf"}`,
			`cascade_gw_request_seconds_count{node="0"}`,
			`cascade_ledger_predicted_gain{node="0"}`,
			`cascade_ledger_realized_savings{node="0"}`,
			`cascade_ledger_placements_total{node="0"}`,
			`cascade_ledger_place_failures_total{node="0"}`,
			`cascade_ledger_hits_total{node="0"}`,
			`cascade_coherency_stale_hits_total{node="0"}`,
			`cascade_coherency_invalidations_total{node="0"}`,
			`cascade_coherency_revalidations_total{node="0"}`,
			`cascade_coherency_cas_conflicts_total{node="0"}`,
		}
		// Every monitored invariant exports a check and a violation counter.
		for _, iv := range audit.Invariants() {
			series = append(series,
				fmt.Sprintf(`cascade_audit_checks_total{node="0",invariant="%s"}`, iv),
				fmt.Sprintf(`cascade_audit_violations_total{node="0",invariant="%s"}`, iv))
		}
		for _, s := range series {
			if !strings.Contains(body, s) {
				return fmt.Errorf("%s: missing series %s\n%s", url, s, body)
			}
		}
		// A clean replay must report zero violations on every invariant.
		if err := assertZeroViolations(body); err != nil {
			return fmt.Errorf("%s: %w", url, err)
		}
		fmt.Printf("observesmoke: %s serves all key series\n", url)
	}

	// The cost ledger must show real accounting, not just series presence:
	// the placement decided once the gateway's descriptor exists books a
	// positive predicted gain at the placing node, and the later repeats
	// realize savings against it.
	gwBody, err := fetch("http://" + gwAddr + "/cascade/metrics")
	if err != nil {
		return err
	}
	for series, floor := range map[string]float64{
		`cascade_ledger_placements_total{node="0"}`: 1,
		`cascade_ledger_hits_total{node="0"}`:       1,
	} {
		v, err := seriesValue(gwBody, series)
		if err != nil {
			return err
		}
		if v < floor {
			return fmt.Errorf("%s = %g, want >= %g", series, v, floor)
		}
	}
	for _, series := range []string{
		`cascade_ledger_predicted_gain{node="0"}`,
		`cascade_ledger_realized_savings{node="0"}`,
	} {
		v, err := seriesValue(gwBody, series)
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("%s = %g, want > 0", series, v)
		}
	}
	fmt.Println("observesmoke: cost ledger books predictions and realized savings")

	// The write just driven must be visible in the coherency series and in
	// the malformed-header counters (present, at zero, on a clean run).
	if v, err := seriesValue(gwBody, `cascade_coherency_invalidations_total{node="0"}`); err != nil {
		return err
	} else if v < 1 {
		return fmt.Errorf(`cascade_coherency_invalidations_total{node="0"} = %g, want >= 1 after the admin write`, v)
	}
	for _, kind := range []string{"gen", "inval"} {
		found := false
		for _, line := range strings.Split(gwBody, "\n") {
			if strings.HasPrefix(line, "cascade_gw_bad_header_total") && strings.Contains(line, `header="`+kind+`"`) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf(`cascade_gw_bad_header_total{header=%q} missing from gateway scrape`, kind)
		}
	}
	fmt.Println("observesmoke: coherency series count the propagated invalidation")

	// The origin decides every whole-chain miss, so it audits its own
	// decisions: its main listener serves cascade_audit_* under
	// node="origin", with Theorem 2's local-benefit invariant actually
	// exercised by the placements just decided, and zero violations.
	originBody, err := fetch("http://" + originAddr + "/cascade/metrics")
	if err != nil {
		return err
	}
	for _, iv := range audit.Invariants() {
		s := fmt.Sprintf(`cascade_audit_checks_total{node="origin",invariant="%s"}`, iv)
		if !strings.Contains(originBody, s) {
			return fmt.Errorf("origin metrics: missing series %s\n%s", s, originBody)
		}
	}
	if err := assertZeroViolations(originBody); err != nil {
		return fmt.Errorf("origin metrics: %w", err)
	}
	if v, err := seriesValue(originBody, `cascade_audit_checks_total{node="origin",invariant="local_benefit"}`); err != nil {
		return err
	} else if v < 1 {
		return fmt.Errorf("origin audited no local-benefit checks despite deciding placements")
	}
	originFlight, err := fetch("http://" + originAddr + "/cascade/debug/flight")
	if err != nil {
		return err
	}
	var originSnap flightrec.Snapshot
	if err := json.Unmarshal([]byte(originFlight), &originSnap); err != nil {
		return fmt.Errorf("origin /cascade/debug/flight is not a JSON snapshot: %w\n%s", err, originFlight)
	}
	if len(originSnap.Events) == 0 {
		return fmt.Errorf("origin flight recorder empty despite decided placements")
	}
	fmt.Printf("observesmoke: origin audits its decisions (%d flight events, zero violations)\n", len(originSnap.Events))

	// The flight-recorder debug endpoint must dump the traffic just driven.
	flightBody, err := fetch("http://" + gwAddr + "/cascade/debug/flight")
	if err != nil {
		return err
	}
	var snap flightrec.Snapshot
	if err := json.Unmarshal([]byte(flightBody), &snap); err != nil {
		return fmt.Errorf("/cascade/debug/flight is not a JSON snapshot: %w\n%s", err, flightBody)
	}
	if snap.Capacity <= 0 || len(snap.Events) == 0 {
		return fmt.Errorf("/cascade/debug/flight dump is empty (capacity %d, %d events)", snap.Capacity, len(snap.Events))
	}
	sawInvalidate := false
	for _, e := range snap.Events {
		if e.Kind == flightrec.KindInvalidate {
			sawInvalidate = true
			break
		}
	}
	if !sawInvalidate {
		return fmt.Errorf("flight recorder holds no invalidate event after the admin write\n%s", flightBody)
	}
	fmt.Printf("observesmoke: flight recorder retains %d events (capacity %d, invalidation recorded)\n", len(snap.Events), snap.Capacity)

	// The span-ring debug endpoint must dump protocol-phase spans for the
	// traffic just driven: one shared trace ID per request, a request root,
	// and every phase span parented inside its trace.
	spansBody, err := fetch("http://" + gwAddr + "/cascade/debug/spans")
	if err != nil {
		return err
	}
	var spanSnap span.Snapshot
	if err := json.Unmarshal([]byte(spansBody), &spanSnap); err != nil {
		return fmt.Errorf("/cascade/debug/spans is not a JSON snapshot: %w\n%s", err, spansBody)
	}
	if spanSnap.Capacity != 128 || len(spanSnap.Spans) == 0 {
		return fmt.Errorf("/cascade/debug/spans dump is empty (capacity %d, %d spans)", spanSnap.Capacity, len(spanSnap.Spans))
	}
	spanPhases := map[string]bool{}
	ids := map[span.TraceID]map[span.SpanID]bool{}
	for _, s := range spanSnap.Spans {
		if s.Trace.IsZero() || s.ID == 0 {
			return fmt.Errorf("span with zero trace or span ID: %+v", s)
		}
		spanPhases[s.Phase.String()] = true
		if ids[s.Trace] == nil {
			ids[s.Trace] = map[span.SpanID]bool{}
		}
		ids[s.Trace][s.ID] = true
	}
	for _, want := range []string{"request", "lookup"} {
		if !spanPhases[want] {
			return fmt.Errorf("span dump lacks %q spans (got %v)\n%s", want, spanPhases, spansBody)
		}
	}
	for _, s := range spanSnap.Spans {
		if s.Parent != 0 && !ids[s.Trace][s.Parent] {
			return fmt.Errorf("span %s parent %s not in its own trace %s", s.ID, s.Parent, s.Trace)
		}
	}
	fmt.Printf("observesmoke: span ring retains %d spans across %d traces (%d phases, parents intact)\n",
		len(spanSnap.Spans), len(ids), len(spanPhases))

	// The trace header must round-trip a JSON event log showing the
	// upward pass and the placement decision.
	req, err := http.NewRequest(http.MethodGet, "http://"+gwAddr+"/objects/42", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Cascade-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	hdr := resp.Header.Get("X-Cascade-Trace")
	if hdr == "" {
		return fmt.Errorf("no X-Cascade-Trace header in traced response")
	}
	var events []reqtrace.Event
	if err := json.Unmarshal([]byte(hdr), &events); err != nil {
		return fmt.Errorf("trace header is not a JSON event array: %w\n%s", err, hdr)
	}
	phases := map[string]bool{}
	for _, e := range events {
		phases[e.Phase] = true
	}
	if !phases[reqtrace.PhaseUp] || !phases[reqtrace.PhaseDecide] {
		return fmt.Errorf("trace lacks up/decide phases: %s", hdr)
	}
	fmt.Printf("observesmoke: trace header carries %d events across %d phases\n", len(events), len(phases))
	return nil
}

// assertZeroViolations scans a Prometheus scrape and fails if any
// cascade_audit_violations_total sample is non-zero — clean traffic must
// audit clean.
func assertZeroViolations(body string) error {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "cascade_audit_violations_total{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[1] != "0" {
			return fmt.Errorf("audit violation on clean run: %s", line)
		}
	}
	return nil
}

// seriesValue returns the sample value of the exactly-named series in a
// Prometheus scrape.
func seriesValue(body, series string) (float64, error) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, series)), 64)
	}
	return 0, fmt.Errorf("series %s not found in scrape", series)
}

// fetch GETs a URL and returns the body as a string.
func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// child process to claim.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func start(bin string, logs io.Writer, args ...string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = logs, logs
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s %v: %w", bin, args, err)
	}
	return cmd, nil
}

func stop(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
	}
}

func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("nothing listening on %s after %s", addr, timeout)
}

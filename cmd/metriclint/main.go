// Command metriclint keeps docs/OBSERVABILITY.md and the code's metric
// registrations in lockstep, in both directions: every series the code
// registers must be documented, and every series the docs name must exist
// in the code. Observability docs rot silently — a renamed counter keeps
// compiling, dashboards keep rendering, and only the operator chasing an
// incident discovers the documented series is gone. This linter turns that
// drift into a build failure (`make lint`).
//
// Registrations are found by parsing every non-test Go file and collecting
// calls to Counter/CounterFunc/Gauge/GaugeFunc/Summary whose first
// argument is a "cascade_…" string literal. Documented names are the
// backticked cascade_ tokens in the docs; `{a,b,c}` alternation groups
// expand, label selectors (`{invariant=...}`) strip, wildcard families
// (`cascade_audit_*`) are ignored, and the `_bucket`/`_sum`/`_count`
// series a summary derives resolve to their base name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var registerMethods = map[string]bool{
	"Counter": true, "CounterFunc": true,
	"Gauge": true, "GaugeFunc": true,
	"Summary": true,
}

// registered maps series name → one "file:line" registration site.
func scanRegistrations(root string) (map[string]string, error) {
	out := make(map[string]string)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		// Tests register demo series under throwaway names; only shipped
		// registrations are part of the documented surface.
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registerMethods[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(name, "cascade_") {
				return true
			}
			if _, seen := out[name]; !seen {
				pos := fset.Position(lit.Pos())
				rel, _ := filepath.Rel(root, pos.Filename)
				out[name] = fmt.Sprintf("%s:%d", rel, pos.Line)
			}
			return true
		})
		return nil
	})
	return out, err
}

var (
	backtickRe = regexp.MustCompile("`([^`]+)`")
	nameRe     = regexp.MustCompile(`cascade_[a-z0-9_{},]*[a-z0-9*]`)
	altGroupRe = regexp.MustCompile(`\{([a-z0-9_]+(?:,[a-z0-9_]+)+)\}`)
)

// scanDocs maps documented series name → the doc line it appears on.
func scanDocs(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		for _, span := range backtickRe.FindAllStringSubmatch(line, -1) {
			for _, tok := range nameRe.FindAllString(span[1], -1) {
				for _, name := range expand(tok) {
					if _, seen := out[name]; !seen {
						out[name] = i + 1
					}
				}
			}
		}
	}
	return out, nil
}

// expand resolves one doc token to concrete series names: `{a,b}` groups
// multiply out, a `{label=...}` selector (anything left with braces after
// group expansion) strips, and wildcard families drop entirely.
func expand(tok string) []string {
	if strings.Contains(tok, "*") {
		return nil
	}
	names := []string{tok}
	for {
		expanded := false
		var next []string
		for _, n := range names {
			m := altGroupRe.FindStringSubmatchIndex(n)
			if m == nil {
				next = append(next, n)
				continue
			}
			expanded = true
			for _, alt := range strings.Split(n[m[2]:m[3]], ",") {
				next = append(next, n[:m[0]]+alt+n[m[1]:])
			}
		}
		names = next
		if !expanded {
			break
		}
	}
	var out []string
	for _, n := range names {
		if i := strings.IndexByte(n, '{'); i >= 0 {
			n = n[:i]
		}
		if n != "" && !strings.HasSuffix(n, "_") {
			out = append(out, n)
		}
	}
	return out
}

// baseOf strips the suffix of a summary-derived series so documenting
// `x_seconds_bucket` counts as documenting the registered `x_seconds`.
func baseOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if b := strings.TrimSuffix(name, suffix); b != name {
			return b
		}
	}
	return name
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	registered, err := scanRegistrations(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}
	docPath := filepath.Join(root, "docs", "OBSERVABILITY.md")
	documented, err := scanDocs(docPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}

	var fail []string
	for name, site := range registered {
		if _, ok := documented[name]; ok {
			continue
		}
		// A summary's derived series documented explicitly also covers it.
		covered := false
		for doc := range documented {
			if baseOf(doc) == name {
				covered = true
				break
			}
		}
		if !covered {
			fail = append(fail, fmt.Sprintf("%s: series %q is registered but not documented in docs/OBSERVABILITY.md", site, name))
		}
	}
	for name, line := range documented {
		if _, ok := registered[name]; ok {
			continue
		}
		if _, ok := registered[baseOf(name)]; ok {
			continue
		}
		fail = append(fail, fmt.Sprintf("docs/OBSERVABILITY.md:%d: series %q is documented but registered nowhere", line, name))
	}
	if len(fail) > 0 {
		sort.Strings(fail)
		for _, f := range fail {
			fmt.Fprintln(os.Stderr, "metriclint:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d registered series ↔ %d documented names, in sync\n",
		len(registered), len(documented))
}

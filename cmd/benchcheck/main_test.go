package main

import (
	"strings"
	"testing"
)

func TestParseBenchAveragesAndTracksMin(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkClusterThroughput-8   	  250000	      6000 ns/op	     512 B/op	      12 allocs/op",
		"BenchmarkClusterThroughput-8   	  300000	      4000 ns/op	     512 B/op	      12 allocs/op",
		"BenchmarkSimulatorThroughput-8 	  400000	      3000 ns/op	       0 B/op	       0 allocs/op",
		"PASS",
	}, "\n")
	got, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	c, ok := got["BenchmarkClusterThroughput"]
	if !ok {
		t.Fatalf("proc suffix not stripped: %v", got)
	}
	if c.Runs != 2 || c.NsPerOp != 5000 || c.MinNsPerOp != 4000 {
		t.Fatalf("cluster metrics = %+v, want mean 5000 / min 4000 over 2 runs", c)
	}
	s := got["BenchmarkSimulatorThroughput"]
	if s.Runs != 1 || s.NsPerOp != 3000 || s.MinNsPerOp != 3000 {
		t.Fatalf("simulator metrics = %+v, want 3000 ns/op single run", s)
	}
}

// TestGateNs: the regression gate judges the best of repeated runs —
// scheduler noise only inflates ns/op — and falls back to the single
// measurement (or a legacy baseline entry without a recorded minimum).
func TestGateNs(t *testing.T) {
	if got := (Metrics{Runs: 3, NsPerOp: 5000, MinNsPerOp: 4200}).GateNs(); got != 4200 {
		t.Fatalf("GateNs = %v, want best run 4200", got)
	}
	if got := (Metrics{Runs: 1, NsPerOp: 5000, MinNsPerOp: 5000}).GateNs(); got != 5000 {
		t.Fatalf("GateNs single run = %v, want 5000", got)
	}
	if got := (Metrics{Runs: 2, NsPerOp: 5000}).GateNs(); got != 5000 {
		t.Fatalf("GateNs without recorded min = %v, want mean 5000", got)
	}
}

// Command benchcheck maintains the repository's committed benchmark
// baseline (BENCH_2.json) and gates performance regressions.
//
// The input is the text output of `go test -bench -benchmem` — the same
// format benchstat consumes; the raw lines are preserved verbatim in the
// JSON so `benchstat old.txt new.txt` style comparisons remain possible
// from the baseline file alone.
//
// Usage:
//
//	go test -bench=. -benchmem -run '^$' ./... | benchcheck -update
//	go test -bench=. -benchmem -run '^$' ./... | benchcheck
//
// Without -update, the gated benchmarks (by default the two replay
// throughput benchmarks) are compared against the baseline: the check
// fails when ns/op regresses beyond -threshold, or when allocs/op grows
// by more than one. Independently of the baseline, -allocs-ceiling pins
// hard absolute allocation budgets: the replay hot path is contractually
// zero allocs/op with observability disabled, and that property must not
// erode one alloc at a time via baseline drift. -bytes-ceiling does the
// same for B/op — zero allocs/op still permits amortized growth of
// pooled buffers, and bytes/op is the number that catches that drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Metrics summarizes one benchmark's measurements. Multiple runs of the
// same benchmark are averaged; the per-run minimum is kept separately
// because scheduler noise only ever inflates ns/op, so the best of N runs
// is the least-biased estimate of the code's true cost and is what the
// regression gate compares (the committed baseline keeps the average).
type Metrics struct {
	NsPerOp     float64  `json:"ns_per_op"`
	MinNsPerOp  float64  `json:"min_ns_per_op,omitempty"`
	BytesPerOp  float64  `json:"bytes_per_op"`
	AllocsPerOp float64  `json:"allocs_per_op"`
	Runs        int      `json:"runs"`
	Raw         []string `json:"raw"`
}

// GateNs is the ns/op value the regression gate judges: the best observed
// run when several were taken, the single measurement otherwise.
func (m Metrics) GateNs() float64 {
	if m.Runs > 1 && m.MinNsPerOp > 0 {
		return m.MinNsPerOp
	}
	return m.NsPerOp
}

// Baseline is the schema of BENCH_2.json.
type Baseline struct {
	Note       string             `json:"note,omitempty"`
	GoVersion  string             `json:"go_version,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// PrePR records the measurements taken before the zero-allocation
	// hot-path rework, kept as evidence of the improvement.
	PrePR map[string]Metrics `json:"pre_pr,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "benchmark output file (default: stdin)")
		jsonPath  = flag.String("json", "BENCH_2.json", "baseline JSON file")
		update    = flag.Bool("update", false, "rewrite the baseline's benchmarks from the input instead of comparing")
		threshold = flag.Float64("threshold", 1.25, "allowed current/baseline ns/op ratio before the check fails")
		gate      = flag.String("gate", "BenchmarkSimulatorThroughput,BenchmarkClusterThroughput,BenchmarkClusterThroughputParallel", "comma-separated benchmarks the check gates on")
		ceilings  = flag.String("allocs-ceiling", "BenchmarkSimulatorThroughput=0", "comma-separated name=max hard caps on allocs/op, enforced regardless of the baseline")
		bceilings = flag.String("bytes-ceiling", "BenchmarkSimulatorThroughput=64", "comma-separated name=max hard caps on B/op, enforced regardless of the baseline")
	)
	flag.Parse()

	caps, err := parseCeilings(*ceilings)
	if err != nil {
		return err
	}
	bcaps, err := parseCeilings(*bceilings)
	if err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	current, err := ParseBench(r)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	if *update {
		// Merge into the existing baseline rather than replacing it, so a
		// partial run (e.g. the bench-check subset) refreshes only the
		// benchmarks it actually measured instead of wiping the rest.
		measured := len(current)
		base := Baseline{Benchmarks: current}
		if old, err := readBaseline(*jsonPath); err == nil {
			base.Note = old.Note
			base.PrePR = old.PrePR
			for name, m := range old.Benchmarks {
				if _, ok := base.Benchmarks[name]; !ok {
					base.Benchmarks[name] = m
				}
			}
		}
		base.GoVersion = runtime.Version()
		if err := writeBaseline(*jsonPath, base); err != nil {
			return err
		}
		fmt.Printf("benchcheck: updated %d of %d benchmarks in %s\n", measured, len(base.Benchmarks), *jsonPath)
		return nil
	}

	base, err := readBaseline(*jsonPath)
	if err != nil {
		return fmt.Errorf("baseline: %w (run `make bench` to create it)", err)
	}
	failures := 0
	for _, name := range strings.Split(*gate, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("SKIP %s: not in baseline\n", name)
			continue
		}
		c, ok := current[name]
		if !ok {
			fmt.Printf("FAIL %s: missing from current run\n", name)
			failures++
			continue
		}
		ns := c.GateNs()
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = ns / b.NsPerOp
		}
		status := "ok  "
		if ratio > *threshold {
			status = "FAIL"
			failures++
		} else if c.AllocsPerOp > b.AllocsPerOp+1 {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %s: %.0f ns/op (best of %d) vs baseline %.0f (%.2fx, limit %.2fx), %.0f allocs/op vs %.0f\n",
			status, name, ns, c.Runs, b.NsPerOp, ratio, *threshold, c.AllocsPerOp, b.AllocsPerOp)
	}
	for _, c := range caps {
		m, ok := current[c.name]
		if !ok {
			fmt.Printf("FAIL %s: allocs ceiling %d set but benchmark missing from current run\n", c.name, c.max)
			failures++
			continue
		}
		status := "ok  "
		if m.AllocsPerOp > float64(c.max) {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %s: %.0f allocs/op vs hard ceiling %d\n", status, c.name, m.AllocsPerOp, c.max)
	}
	for _, c := range bcaps {
		m, ok := current[c.name]
		if !ok {
			fmt.Printf("FAIL %s: bytes ceiling %d set but benchmark missing from current run\n", c.name, c.max)
			failures++
			continue
		}
		status := "ok  "
		if m.BytesPerOp > float64(c.max) {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %s: %.2f B/op vs hard ceiling %d\n", status, c.name, m.BytesPerOp, c.max)
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed", failures)
	}
	return nil
}

// ceiling is one -allocs-ceiling or -bytes-ceiling entry: a hard absolute
// per-op cap.
type ceiling struct {
	name string
	max  int64
}

// parseCeilings parses "Name=max,Name=max" (empty string: no ceilings).
func parseCeilings(s string) ([]ceiling, error) {
	var out []ceiling
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -allocs-ceiling entry %q (want name=max)", part)
		}
		max, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("bad -allocs-ceiling value %q", val)
		}
		out = append(out, ceiling{name: strings.TrimSpace(name), max: max})
	}
	return out, nil
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, err
	}
	return b, nil
}

func writeBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseBench extracts per-benchmark metrics from `go test -bench` text
// output. The trailing -N GOMAXPROCS suffix is stripped from names so
// results compare across machines; repeated runs are averaged.
func ParseBench(r io.Reader) (map[string]Metrics, error) {
	out := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := stripProcSuffix(fields[0])
		m := out[name]
		var ns, bytes, allocs float64
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				ns = v
			case "B/op":
				bytes = v
			case "allocs/op":
				allocs = v
			}
		}
		// Running mean over repeated runs; min kept for the gate.
		if m.Runs == 0 || ns < m.MinNsPerOp {
			m.MinNsPerOp = ns
		}
		n := float64(m.Runs)
		m.NsPerOp = (m.NsPerOp*n + ns) / (n + 1)
		m.BytesPerOp = (m.BytesPerOp*n + bytes) / (n + 1)
		m.AllocsPerOp = (m.AllocsPerOp*n + allocs) / (n + 1)
		m.Runs++
		m.Raw = append(m.Raw, line)
		out[name] = m
	}
	return out, sc.Err()
}

// stripProcSuffix removes the -N GOMAXPROCS suffix from a benchmark name.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Hierarchical reproduces the paper's §4.2 setting: a depth-4, fanout-3
// cache tree with exponentially growing uplink delays, comparing all four
// schemes — including the MODULO pathology where any radius above 1 leaves
// whole tree levels unused.
//
//	go run ./examples/hierarchical
package main

import (
	"fmt"
	"os"

	"cascade"
)

func main() {
	cfg := cascade.ExperimentConfig{
		Trace: cascade.TraceConfig{
			Objects:  8000,
			Servers:  150,
			Clients:  800,
			Requests: 150000,
			Duration: 8 * 3600,
			Seed:     7,
		},
		Tree:       cascade.DefaultTreeConfig(), // depth 4, fanout 3, d=8ms, g=5
		CacheSizes: []float64{0.003, 0.01, 0.03, 0.1},
		Schemes:    []string{"LRU", "MODULO(4)", "LNC-R", "COORD"},
	}

	sweep, err := cascade.RunSweep(cascade.ArchHierarchy, cfg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, id := range []string{"fig9a", "fig9b", "fig10a", "fig10b"} {
		fig, _ := cascade.FigureByID(id)
		if err := sweep.Project(fig).Format(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	// The §4.2 radius observation: in the hierarchy, MODULO(1) ≡ LRU is
	// the best MODULO can do; radius 4 uses only the leaf caches.
	radius, err := cascade.RadiusStudy(cascade.ArchHierarchy, cfg, []int{1, 2, 3, 4})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	radius.Format(os.Stdout)
	fmt.Println("\n(radius 1 wins: larger radii leave levels 1..3 of the tree unused)")
}

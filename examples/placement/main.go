// Placement demonstrates the library's analytical core directly: the
// k-optimization dynamic program of paper §2.2, used here as a standalone
// what-if tool for a content-distribution path — no simulator involved.
//
// Scenario: an origin in another region serves a 2 MB video manifest
// through four caches (regional POP → metro POP → ISP cache → campus
// cache). Each cache observes a different request rate for the object and
// is differently full. Where should copies go?
//
//	go run ./examples/placement
package main

import (
	"fmt"

	"cascade"
)

func main() {
	// Path nodes ordered from the serving point (origin side) toward the
	// client, exactly as the paper's A_1 … A_n.
	names := []string{"regional-pop", "metro-pop", "isp-cache", "campus"}
	path := []cascade.PathNode{
		// The regional POP sees every request below it: 9/s. Fetching
		// from the origin costs it 80 ms per request. It is packed
		// with hot objects: evicting 2 MB costs 0.9 cost units.
		{Freq: 9.0, MissPenalty: 0.080, CostLoss: 0.9},
		// The metro POP sees 6/s, is 30 ms further from the origin.
		{Freq: 6.0, MissPenalty: 0.110, CostLoss: 0.2},
		// The ISP cache sees 2.5/s and is nearly full of equally hot
		// content — eviction would be expensive.
		{Freq: 2.5, MissPenalty: 0.150, CostLoss: 1.5},
		// The campus cache sees only this department's 1.2/s but is
		// far from the origin and half-empty.
		{Freq: 1.2, MissPenalty: 0.210, CostLoss: 0.05},
	}

	best := cascade.OptimizePlacement(path)
	fmt.Println("optimal placement:")
	for _, i := range best.Indices {
		n := path[i]
		fmt.Printf("  cache %-12s  f=%.1f/s  m=%.0fms  l=%.2f  (local benefit f*m-l = %+.3f)\n",
			names[i], n.Freq, n.MissPenalty*1000, n.CostLoss,
			n.Freq*n.MissPenalty-n.CostLoss)
	}
	fmt.Printf("total access-cost reduction: %.3f cost units/s\n\n", best.Gain)

	// What-if analysis with PlacementGain: compare against naive
	// strategies.
	all := []int{0, 1, 2, 3}
	fmt.Printf("cache everywhere:      Δcost = %+.3f\n", cascade.PlacementGain(path, all))
	fmt.Printf("cache at campus only:  Δcost = %+.3f\n", cascade.PlacementGain(path, []int{3}))
	fmt.Printf("cache at ISP only:     Δcost = %+.3f\n", cascade.PlacementGain(path, []int{2}))
	fmt.Printf("optimal (%v):      Δcost = %+.3f\n", best.Indices, best.Gain)

	// Theorem 2 in action: the ISP cache (index 2) violates local
	// benefit (f·m = 0.375 < l = 1.5), so no optimal solution ever
	// includes it — its descriptor need not even be kept.
	for i, n := range path {
		tag := "kept as candidate"
		if n.Freq*n.MissPenalty < n.CostLoss {
			tag = "prunable by Theorem 2 (f*m < l)"
		}
		fmt.Printf("candidate %-12s: %s\n", names[i], tag)
	}
}

// Freshness probes the paper's §2 assumption that cached copies can be
// treated as up-to-date: it replays the same workload while objects
// actually change, under the four consistency modes of the engine-native
// coherency substrate — None (the paper's assumption), TTL expiry, PSI
// piggyback invalidation (the protocol the paper cites), and CAS strict
// never-serve-stale — and reports how much staleness each serves and what
// each pays in refetches.
//
//	go run ./examples/freshness
package main

import (
	"fmt"
	"os"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects:  4000,
		Servers:  80,
		Clients:  400,
		Requests: 80000,
		Duration: 6 * 3600,
		Seed:     12,
	})
	net := cascade.GenerateTree(cascade.DefaultTreeConfig())

	fmt.Println("update-interval  mode  latency(s)  stale-hit%  refetch%")
	for _, interval := range []float64{7 * 86400, 86400, 3600} {
		for _, mode := range []cascade.CoherencyMode{
			cascade.CoherencyNone, cascade.CoherencyTTL, cascade.CoherencyPSI, cascade.CoherencyCAS,
		} {
			sim, err := cascade.NewSimulator(cascade.SimConfig{
				Scheme:            cascade.NewCoordinated(),
				Network:           net,
				Catalog:           gen.Catalog(),
				RelativeCacheSize: 0.02,
				Seed:              12,
				Coherency: &cascade.CoherencyConfig{
					Mode:                 mode,
					ObjectUpdateInterval: interval,
					Lifetime:             interval / 4,
					Seed:                 12,
				},
			})
			if err != nil {
				return err
			}
			gen.Reset()
			sum, _ := sim.Run(gen, gen.Len()/2)
			fmt.Printf("%14.0fh  %-4s  %10.4f  %10.2f  %8.2f\n",
				interval/3600, mode, sum.AvgLatency,
				100*sum.StaleHitRatio, 100*sum.RefetchRatio)
		}
	}
	fmt.Println("\nAt web-like (weekly) update rates even mode None serves <2% stale —")
	fmt.Println("the paper's freshness assumption. PSI removes most of the rest, and")
	fmt.Println("CAS pins staleness at zero, paying for it in validation refetches.")
	return nil
}

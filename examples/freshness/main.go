// Freshness probes the paper's §2 assumption that cached copies can be
// treated as up-to-date: it replays the same workload while objects
// actually change, under three consistency policies — None (the paper's
// assumption), TTL expiry, and piggyback server invalidation (PSI, the
// protocol the paper cites) — and reports how much staleness each serves.
//
//	go run ./examples/freshness
package main

import (
	"fmt"
	"os"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects:  4000,
		Servers:  80,
		Clients:  400,
		Requests: 80000,
		Duration: 6 * 3600,
		Seed:     12,
	})
	net := cascade.GenerateTree(cascade.DefaultTreeConfig())

	fmt.Println("update-interval  policy  latency(s)  stale-hit%  refetch%")
	for _, interval := range []float64{7 * 86400, 86400, 3600} {
		for _, policy := range []cascade.CoherencyPolicy{
			cascade.CoherencyNone, cascade.CoherencyTTL, cascade.CoherencyPSI,
		} {
			tracker := cascade.NewCoherencyTracker(cascade.CoherencyConfig{
				Policy:               policy,
				ObjectUpdateInterval: interval,
				Lifetime:             interval / 4,
				Seed:                 12,
			}, gen.Catalog())
			sim, err := cascade.NewSimulator(cascade.SimConfig{
				Scheme:            cascade.NewCoordinated(),
				Network:           net,
				Catalog:           gen.Catalog(),
				RelativeCacheSize: 0.02,
				Seed:              12,
				Coherency:         tracker,
			})
			if err != nil {
				return err
			}
			gen.Reset()
			sum, _ := sim.Run(gen, gen.Len()/2)
			fmt.Printf("%14.0fh  %-6s  %10.4f  %10.2f  %8.2f\n",
				interval/3600, policy, sum.AvgLatency,
				100*sum.StaleHitRatio, 100*sum.RefetchRatio)
		}
	}
	fmt.Println("\nAt web-like (weekly) update rates even policy None serves <2% stale —")
	fmt.Println("the paper's freshness assumption — and PSI removes most of the rest.")
	return nil
}

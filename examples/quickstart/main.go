// Quickstart: compare coordinated caching against LRU on a generated
// en-route topology with a synthetic Zipf workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"cascade"
)

func main() {
	// A small workload: 5,000 objects, 100,000 requests over 6 hours.
	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects:  5000,
		Servers:  100,
		Clients:  500,
		Requests: 100000,
		Duration: 6 * 3600,
		Seed:     42,
	})

	// The paper's Table 1 network: 50 WAN + 50 MAN nodes, a transparent
	// cache at every node.
	net := cascade.GenerateTiers(cascade.DefaultTiersConfig(), rand.New(rand.NewSource(42)))

	fmt.Println("scheme    latency(s)  byte-hit  traffic(B*hops)  rw-load(B/req)")
	for _, s := range []cascade.Scheme{cascade.NewLRU(), cascade.NewCoordinated()} {
		sim, err := cascade.NewSimulator(cascade.SimConfig{
			Scheme:            s,
			Network:           net,
			Catalog:           gen.Catalog(),
			RelativeCacheSize: 0.02, // each cache holds 2% of all object bytes
			Seed:              42,
		})
		if err != nil {
			panic(err)
		}
		gen.Reset()
		// First half of the trace warms the caches (paper §3.1).
		sum, _ := sim.Run(gen, gen.Len()/2)
		fmt.Printf("%-8s  %9.4f  %8.3f  %15.0f  %14.0f\n",
			s.Name(), sum.AvgLatency, sum.ByteHitRatio, sum.AvgByteHops, sum.AvgLoad)
	}
}

// Livecluster runs the coordinated caching protocol as a real concurrent
// system: one actor goroutine per cache node, requests and responses as
// messages, placement decided by the serving node from piggybacked
// descriptors — the deployable counterpart of the trace-driven simulator.
//
//	go run ./examples/livecluster
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects:  2000,
		Servers:  40,
		Clients:  200,
		Requests: 30000,
		Duration: 3600,
		Seed:     3,
	})
	cat := gen.Catalog()
	net := cascade.GenerateTiers(cascade.DefaultTiersConfig(), rand.New(rand.NewSource(3)))

	cluster, err := cascade.NewCluster(cascade.ClusterConfig{
		Network:       net,
		CacheBytes:    int64(0.02 * float64(cat.TotalBytes)),
		DCacheEntries: 2000,
		AvgObjectSize: cat.AvgSize(),
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Attach clients and servers to MAN nodes, as in the paper.
	r := rand.New(rand.NewSource(3))
	mans := net.ClientAttachPoints()
	clientNode := make([]cascade.NodeID, cat.NumClients)
	for i := range clientNode {
		clientNode[i] = mans[r.Intn(len(mans))]
	}
	serverNode := make([]cascade.NodeID, cat.NumServers)
	for i := range serverNode {
		serverNode[i] = mans[r.Intn(len(mans))]
	}

	// Drive the cluster from 8 concurrent client workers sharing the
	// generated request stream.
	requests := make(chan cascade.Request, 256)
	go func() {
		defer close(requests)
		for {
			req, ok := gen.Next()
			if !ok {
				return
			}
			requests <- req
		}
	}()

	var (
		wg        sync.WaitGroup
		served    atomic.Int64
		cacheHits atomic.Int64
		totalCost int64 // microseconds, atomically accumulated
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range requests {
				res, err := cluster.Get(context.Background(),
					clientNode[req.Client], serverNode[req.Server], req.Object, req.Size)
				if err != nil {
					fmt.Fprintln(os.Stderr, "get:", err)
					return
				}
				served.Add(1)
				if res.ServedBy != cascade.NoNode {
					cacheHits.Add(1)
				}
				atomic.AddInt64(&totalCost, int64(res.Cost*1e6))
			}
		}()
	}
	wg.Wait()

	n := served.Load()
	fmt.Printf("served %d requests through %d cache actors\n", n, net.NumCaches())
	fmt.Printf("cache hit ratio: %.3f\n", float64(cacheHits.Load())/float64(n))
	fmt.Printf("mean access cost: %.4fs\n", float64(atomic.LoadInt64(&totalCost))/1e6/float64(n))
	return nil
}

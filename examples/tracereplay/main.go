// Tracereplay shows the workload round trip a downstream user of real
// proxy logs would follow: generate (or convert) a trace into the cascade
// text format, then replay the identical stream through the experiment
// harness with FileWorkload.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Produce a trace file. A real deployment would convert proxy
	// logs into this format instead (one catalog line per object, one
	// line per request).
	path := filepath.Join(os.TempDir(), "cascade-example-trace.txt")
	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects:  2000,
		Servers:  50,
		Clients:  200,
		Requests: 40000,
		Duration: 3600,
		Seed:     99,
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := cascade.NewTraceWriter(f, gen.Catalog())
	if err != nil {
		return err
	}
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.WriteRequest(req); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	defer os.Remove(path)

	// 2. Replay the file through a sweep. Every cell re-reads the file,
	// so results are exactly reproducible from the artifact alone.
	workload, err := cascade.FileWorkload(path)
	if err != nil {
		return err
	}
	cfg := cascade.ExperimentConfig{
		Workload:   workload,
		CacheSizes: []float64{0.01, 0.1},
		Schemes:    []string{"LRU", "COORD"},
	}
	sweep, err := cascade.RunSweep(cascade.ArchEnRoute, cfg, nil)
	if err != nil {
		return err
	}
	fig, _ := cascade.FigureByID("fig6a")
	return sweep.Project(fig).Format(os.Stdout)
}

// Httpchain runs the coordinated caching protocol over real HTTP: a chain
// of cache gateways in front of an origin server, with all coordination
// state carried in X-Cascade-* headers — the paper's piggybacking, on the
// wire the paper targets.
//
//	go run ./examples/httpchain
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"

	"cascade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// Origin serving 2 KB objects.
	origin := httptest.NewServer(cascade.NewHTTPOrigin(func(cascade.ObjectID) int { return 2048 }))
	defer origin.Close()

	// A three-level gateway chain: regional (2) ← metro (1) ← edge (0).
	clock := cascade.WallClock()
	upstream := origin.URL
	names := []string{"edge", "metro", "regional"}
	var servers []*httptest.Server
	for i := 2; i >= 0; i-- {
		node := cascade.NewHTTPCacheNode(cascade.NodeID(i), upstream, float64(i+1), 64<<10, 256, clock)
		srv := httptest.NewServer(node)
		defer srv.Close()
		servers = append([]*httptest.Server{srv}, servers...)
		upstream = srv.URL
	}
	edge := servers[0].URL

	fetch := func(obj int) (served string, n int) {
		resp, err := http.Get(fmt.Sprintf("%s/objects/%d", edge, obj))
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.Header.Get(cascade.HTTPHeaderHit), len(body)
	}

	fmt.Println("request  object  served-by  bytes")
	for i, obj := range []int{7, 7, 7, 9, 7} {
		served, n := fetch(obj)
		label := served
		if served != "origin" {
			var id int
			fmt.Sscanf(served, "%d", &id)
			label = names[id]
		}
		fmt.Printf("%7d  %6d  %-9s  %5d\n", i+1, obj, label, n)
	}
	fmt.Println("\nobject 7's third fetch is served by the edge gateway: the first pass")
	fmt.Println("seeded descriptors, the second pass placed the copy where the DP chose.")
	return nil
}

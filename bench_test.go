// Package cascade_test benchmarks regenerate the paper's evaluation
// artifacts: one benchmark per table and figure (sub-benchmarks per scheme
// and cache size), each reporting the figure's metric via b.ReportMetric,
// plus ablation benches for the design choices called out in DESIGN.md.
//
// The full multi-size series the paper plots are printed by
// `go run ./cmd/cascadesim -exp all`; these benches reproduce each figure's
// series at benchmark scale and record wall-clock cost per simulation.
package cascade_test

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"cascade"
)

// benchScale keeps every cell under ~a second while preserving the paper's
// qualitative shape.
var benchTrace = cascade.TraceConfig{
	Objects:  4000,
	Servers:  80,
	Clients:  400,
	Requests: 80000,
	Duration: 4 * 3600,
	Seed:     13,
}

var (
	workloadOnce sync.Once
	benchGen     *cascade.Generator
	benchEnRoute cascade.Network
	benchTree    cascade.Network
)

func setup() {
	workloadOnce.Do(func() {
		benchGen = cascade.NewGenerator(benchTrace)
		benchEnRoute = cascade.GenerateTiers(cascade.DefaultTiersConfig(), rand.New(rand.NewSource(13)))
		benchTree = cascade.GenerateTree(cascade.DefaultTreeConfig())
	})
}

// runCell replays the benchmark workload once through a scheme and returns
// the run summary.
func runCell(b *testing.B, s cascade.Scheme, net cascade.Network, size float64) cascade.Summary {
	b.Helper()
	sim, err := cascade.NewSimulator(cascade.SimConfig{
		Scheme:            s,
		Network:           net,
		Catalog:           benchGen.Catalog(),
		RelativeCacheSize: size,
		Seed:              13,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchGen.Reset()
	sum, _ := sim.Run(benchGen, benchGen.Len()/2)
	return sum
}

// benchFigure runs one figure's series: every scheme at representative
// cache sizes, reporting the figure's metric.
func benchFigure(b *testing.B, figID string, net func() cascade.Network) {
	setup()
	fig, ok := cascade.FigureByID(figID)
	if !ok {
		b.Fatalf("unknown figure %s", figID)
	}
	for _, size := range []float64{0.01, 0.1} {
		for _, name := range []string{"LRU", "MODULO(4)", "LNC-R", "COORD"} {
			name, size := name, size
			b.Run(sizeSchemeLabel(size, name), func(b *testing.B) {
				b.ReportAllocs()
				var sum cascade.Summary
				for i := 0; i < b.N; i++ {
					s, err := cascade.NewScheme(name)
					if err != nil {
						b.Fatal(err)
					}
					sum = runCell(b, s, net(), size)
				}
				b.ReportMetric(fig.Extract(sum), metricUnit(figID))
			})
		}
	}
}

func sizeSchemeLabel(size float64, scheme string) string {
	if size == 0.01 {
		return "size=1%/" + scheme
	}
	return "size=10%/" + scheme
}

func metricUnit(figID string) string {
	switch figID {
	case "fig6a", "fig9a":
		return "latency_s"
	case "fig6b", "fig9b":
		return "resp_s_per_KB"
	case "fig7a", "fig10a":
		return "byte_hit_ratio"
	case "fig7b":
		return "byte_hops"
	case "fig8a":
		return "hops"
	case "fig8b", "fig10b":
		return "load_B_per_req"
	}
	return "value"
}

// BenchmarkTable1Topology regenerates Table 1: topology generation plus
// characteristic measurement.
func BenchmarkTable1Topology(b *testing.B) {
	var d cascade.TopologyDescription
	for i := 0; i < b.N; i++ {
		net := cascade.GenerateTiers(cascade.DefaultTiersConfig(), rand.New(rand.NewSource(13)))
		d = net.Describe()
	}
	b.ReportMetric(float64(d.Links), "links")
	b.ReportMetric(d.AvgWANDelay*1000, "wan_delay_ms")
	b.ReportMetric(d.AvgMANDelay*1000, "man_delay_ms")
	b.ReportMetric(d.AvgRouteHops, "route_hops")
}

// Figures 6–8: en-route architecture.

func BenchmarkFig6aEnRouteLatency(b *testing.B) {
	benchFigure(b, "fig6a", func() cascade.Network { return benchEnRoute })
}

func BenchmarkFig6bEnRouteResponseRatio(b *testing.B) {
	benchFigure(b, "fig6b", func() cascade.Network { return benchEnRoute })
}

func BenchmarkFig7aEnRouteByteHitRatio(b *testing.B) {
	benchFigure(b, "fig7a", func() cascade.Network { return benchEnRoute })
}

func BenchmarkFig7bEnRouteTraffic(b *testing.B) {
	benchFigure(b, "fig7b", func() cascade.Network { return benchEnRoute })
}

func BenchmarkFig8aEnRouteHops(b *testing.B) {
	benchFigure(b, "fig8a", func() cascade.Network { return benchEnRoute })
}

func BenchmarkFig8bEnRouteCacheLoad(b *testing.B) {
	benchFigure(b, "fig8b", func() cascade.Network { return benchEnRoute })
}

// Figures 9–10: hierarchical architecture.

func BenchmarkFig9aHierarchyLatency(b *testing.B) {
	benchFigure(b, "fig9a", func() cascade.Network { return benchTree })
}

func BenchmarkFig9bHierarchyResponseRatio(b *testing.B) {
	benchFigure(b, "fig9b", func() cascade.Network { return benchTree })
}

func BenchmarkFig10aHierarchyByteHitRatio(b *testing.B) {
	benchFigure(b, "fig10a", func() cascade.Network { return benchTree })
}

func BenchmarkFig10bHierarchyCacheLoad(b *testing.B) {
	benchFigure(b, "fig10b", func() cascade.Network { return benchTree })
}

// Ablations.

// BenchmarkAblationModuloRadius reproduces the §4.1/§4.2 radius
// sensitivity: latency per cache radius on both architectures.
func BenchmarkAblationModuloRadius(b *testing.B) {
	setup()
	for _, arch := range []struct {
		name string
		net  cascade.Network
	}{{"enroute", benchEnRoute}, {"hierarchy", benchTree}} {
		for _, radius := range []int{1, 2, 4, 6} {
			arch, radius := arch, radius
			b.Run(arch.name+"/radius="+strconv.Itoa(radius), func(b *testing.B) {
				var sum cascade.Summary
				for i := 0; i < b.N; i++ {
					sum = runCell(b, cascade.NewModulo(radius), arch.net, 0.01)
				}
				b.ReportMetric(sum.AvgLatency, "latency_s")
			})
		}
	}
}

// BenchmarkAblationDCacheFactor reproduces the §3.2 d-cache sizing choice
// (the paper settles on 3× the main cache's object count).
func BenchmarkAblationDCacheFactor(b *testing.B) {
	setup()
	for _, factor := range []float64{0.5, 1, 3, 10} {
		factor := factor
		b.Run("factor="+strconv.FormatFloat(factor, 'g', -1, 64), func(b *testing.B) {
			var sum cascade.Summary
			for i := 0; i < b.N; i++ {
				sim, err := cascade.NewSimulator(cascade.SimConfig{
					Scheme:            cascade.NewCoordinated(),
					Network:           benchEnRoute,
					Catalog:           benchGen.Catalog(),
					RelativeCacheSize: 0.01,
					DCacheFactor:      factor,
					Seed:              13,
				})
				if err != nil {
					b.Fatal(err)
				}
				benchGen.Reset()
				sum, _ = sim.Run(benchGen, benchGen.Len()/2)
			}
			b.ReportMetric(sum.AvgLatency, "latency_s")
		})
	}
}

// BenchmarkAblationMonotoneClamp measures the effect of restoring the
// monotone frequency profile before the DP (DESIGN.md design decision).
func BenchmarkAblationMonotoneClamp(b *testing.B) {
	setup()
	for _, clamp := range []bool{true, false} {
		clamp := clamp
		name := "clamp=off"
		if clamp {
			name = "clamp=on"
		}
		b.Run(name, func(b *testing.B) {
			var sum cascade.Summary
			for i := 0; i < b.N; i++ {
				s := cascade.NewCoordinated()
				s.SetClampMonotone(clamp)
				sum = runCell(b, s, benchEnRoute, 0.01)
			}
			b.ReportMetric(sum.AvgLatency, "latency_s")
		})
	}
}

// BenchmarkAblationDCachePolicy compares the two §2.4 d-cache
// organizations inside the coordinated scheme: the heap LFU against the
// O(1) LRU stacks.
func BenchmarkAblationDCachePolicy(b *testing.B) {
	setup()
	for _, tc := range []struct {
		name string
		fac  cascade.DCacheFactory
	}{{"heap-lfu", cascade.DCacheLFU}, {"lru-stacks", cascade.DCacheLRUStacks}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var sum cascade.Summary
			for i := 0; i < b.N; i++ {
				s := cascade.NewCoordinated()
				s.SetDCacheFactory(tc.fac)
				sum = runCell(b, s, benchEnRoute, 0.01)
			}
			b.ReportMetric(sum.AvgLatency, "latency_s")
			b.ReportMetric(sum.ByteHitRatio, "byte_hit_ratio")
		})
	}
}

// BenchmarkAblationExtraBaselines runs the beyond-paper baselines (LFU,
// GDS) next to COORD for context.
func BenchmarkAblationExtraBaselines(b *testing.B) {
	setup()
	for _, name := range []string{"LFU", "GDS", "COORD"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var sum cascade.Summary
			for i := 0; i < b.N; i++ {
				s, err := cascade.NewScheme(name)
				if err != nil {
					b.Fatal(err)
				}
				sum = runCell(b, s, benchEnRoute, 0.01)
			}
			b.ReportMetric(sum.AvgLatency, "latency_s")
		})
	}
}

// BenchmarkOverheadPiggyback quantifies the coordinated protocol's
// communication overhead (§2.3–2.4).
func BenchmarkOverheadPiggyback(b *testing.B) {
	setup()
	var sum cascade.Summary
	for i := 0; i < b.N; i++ {
		sum = runCell(b, cascade.NewCoordinated(), benchEnRoute, 0.01)
	}
	b.ReportMetric(sum.AvgPiggyback, "piggyback_B_per_req")
	b.ReportMetric(100*sum.AvgPiggyback/sum.AvgSize, "overhead_pct")
}

// BenchmarkSimulatorThroughput measures raw replay speed: requests per
// second through the coordinated scheme on the en-route network.
func BenchmarkSimulatorThroughput(b *testing.B) {
	setup()
	sim, err := cascade.NewSimulator(cascade.SimConfig{
		Scheme:            cascade.NewCoordinated(),
		Network:           benchEnRoute,
		Catalog:           benchGen.Catalog(),
		RelativeCacheSize: 0.01,
		Seed:              13,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchGen.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		req, ok := benchGen.Next()
		if !ok {
			benchGen.Reset()
			req, _ = benchGen.Next()
		}
		sim.Process(req)
		n++
	}
}

// BenchmarkClusterThroughput measures the live message-passing runtime:
// requests per second through the actor plane with 8 concurrent clients.
func BenchmarkClusterThroughput(b *testing.B) {
	setup()
	cluster, err := cascade.NewCluster(cascade.ClusterConfig{
		Network:       benchTree,
		CacheBytes:    1 << 22,
		DCacheEntries: 2000,
		AvgObjectSize: benchGen.Catalog().AvgSize(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	leaves := benchTree.ClientAttachPoints()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(99))
		i := 0
		for pb.Next() {
			leaf := leaves[r.Intn(len(leaves))]
			obj := cascade.ObjectID(r.Intn(2000))
			if _, err := cluster.Get(context.Background(), leaf, cascade.NoNode, obj, 4096); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	st := cluster.Stats()
	if st.Requests > 0 {
		b.ReportMetric(float64(st.Messages)/float64(st.Requests), "msgs_per_req")
		b.ReportMetric(float64(st.CacheHits)/float64(st.Requests), "hit_ratio")
	}
}

// BenchmarkClusterThroughputSpans is BenchmarkClusterThroughput with span
// tracing on at a production-style 1% tail-sampling rate. Compare against
// the plain variant: the acceptance bar for the tracing subsystem is a
// regression under 5%.
func BenchmarkClusterThroughputSpans(b *testing.B) {
	setup()
	cluster, err := cascade.NewCluster(cascade.ClusterConfig{
		Network:       benchTree,
		CacheBytes:    1 << 22,
		DCacheEntries: 2000,
		AvgObjectSize: benchGen.Catalog().AvgSize(),
		SpanCapacity:  512,
		SpanSample:    0.01,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	leaves := benchTree.ClientAttachPoints()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(99))
		for pb.Next() {
			leaf := leaves[r.Intn(len(leaves))]
			obj := cascade.ObjectID(r.Intn(2000))
			if _, err := cluster.Get(context.Background(), leaf, cascade.NoNode, obj, 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := cluster.Stats()
	if st.Requests > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.Requests), "hit_ratio")
	}
}

// BenchmarkClusterThroughputParallel measures the sharded direct data
// plane: requests execute synchronously on the caller's goroutine against
// 8-way sharded node state, so concurrent clients on different objects
// never share a lock. Compare against the committed single-shard
// BenchmarkClusterThroughput baseline in BENCH_2.json (the actor plane sat
// at ~8.1µs/op before the direct plane landed).
func BenchmarkClusterThroughputParallel(b *testing.B) {
	setup()
	cluster, err := cascade.NewCluster(cascade.ClusterConfig{
		Network:       benchTree,
		CacheBytes:    1 << 22,
		DCacheEntries: 2000,
		AvgObjectSize: benchGen.Catalog().AvgSize(),
		Shards:        8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	leaves := benchTree.ClientAttachPoints()
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	var seed int64
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(99 + atomic.AddInt64(&seed, 1)))
		for pb.Next() {
			leaf := leaves[r.Intn(len(leaves))]
			obj := cascade.ObjectID(r.Intn(2000))
			if _, err := cluster.Get(context.Background(), leaf, cascade.NoNode, obj, 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := cluster.Stats()
	if st.Requests > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.Requests), "hit_ratio")
	}
}

// BenchmarkAnalysisCheLRU measures the fixed-point solve for a 100k-object
// catalog (what an operator would run interactively for capacity planning).
func BenchmarkAnalysisCheLRU(b *testing.B) {
	objs := make([]cascade.AnalysisObject, 100000)
	for i := range objs {
		objs[i] = cascade.AnalysisObject{Rate: 1 / float64(i+1), Size: int64(1000 + i%9000)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var p cascade.AnalysisPrediction
	for i := 0; i < b.N; i++ {
		var err error
		p, err = cascade.CheLRUHitRatio(objs, 50<<20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.HitRatio, "hit_ratio")
}

// Package cascade is a library-grade reproduction of "Coordinated
// Management of Cascaded Caches for Efficient Content Distribution" (Tang &
// Chanson, ICDE 2003).
//
// Content-delivery caches are usually cascaded: a request missing a
// lower-level cache is forwarded toward the origin server through further
// caches. The paper's contribution is to manage placement and replacement
// across the whole delivery path at once: requests piggyback each cache's
// frequency, miss-penalty and eviction-cost information; the serving node
// solves the placement problem exactly with an O(n²) dynamic program; the
// response carries the decision back down.
//
// The package exposes four layers:
//
//   - The placement optimizer (OptimizePlacement): the paper's
//     k-optimization dynamic program over (f_i, m_i, l_i) path profiles.
//   - The protocol engine (EngineState, EngineCandidate, DecidePlacement):
//     the transport-agnostic per-node protocol steps every incarnation —
//     replay scheme, actor cluster, HTTP gateway — delegates to.
//   - Caching schemes (NewCoordinated, NewLRU, NewModulo, NewLNCR, plus
//     LFU/GDS extras): complete per-node cache management algorithms
//     implementing the Scheme interface.
//   - Architectures (GenerateTiers, GenerateTree): the paper's en-route
//     (Tiers-style WAN/MAN topology, Table 1) and hierarchical (full O-ary
//     tree, Figure 5) networks.
//   - Workloads and simulation (NewGenerator, NewSimulator, RunSweep): the
//     synthetic Zipf trace substrate, the trace-driven simulator, and the
//     experiment harness regenerating every figure of the paper.
//
// Quickstart:
//
//	gen := cascade.NewGenerator(cascade.TraceConfig{Seed: 1})
//	net := cascade.GenerateTiers(cascade.DefaultTiersConfig(), rand.New(rand.NewSource(1)))
//	sim, _ := cascade.NewSimulator(cascade.SimConfig{
//		Scheme:            cascade.NewCoordinated(),
//		Network:           net,
//		Catalog:           gen.Catalog(),
//		RelativeCacheSize: 0.01,
//	})
//	summary, _ := sim.Run(gen, gen.Len()/2)
//	fmt.Println(summary.AvgLatency)
package cascade

import (
	"io"
	"math/rand"
	"time"

	"cascade/internal/analysis"
	"cascade/internal/audit"
	"cascade/internal/coherency"
	"cascade/internal/core"
	"cascade/internal/dcache"
	"cascade/internal/engine"
	"cascade/internal/experiment"
	"cascade/internal/fault"
	"cascade/internal/flightrec"
	"cascade/internal/httpgw"
	"cascade/internal/metrics"
	"cascade/internal/model"
	"cascade/internal/reqtrace"
	"cascade/internal/runtime"
	"cascade/internal/scheme"
	"cascade/internal/sim"
	"cascade/internal/span"
	"cascade/internal/topology"
	"cascade/internal/trace"
)

// Identifier and record types shared across the library.
type (
	// ObjectID identifies a web object.
	ObjectID = model.ObjectID
	// NodeID identifies a cache/topology node.
	NodeID = model.NodeID
	// ClientID identifies a request-issuing client.
	ClientID = model.ClientID
	// ServerID identifies an origin server.
	ServerID = model.ServerID
	// Object is a catalog entry (identity, size, home server).
	Object = model.Object
	// Request is one trace record.
	Request = model.Request
)

// NoNode is the sentinel "no node" value (e.g. hierarchy server side).
const NoNode = model.NoNode

// Placement optimizer (paper §2.1–2.2).
type (
	// PathNode is one candidate cache on a delivery path: its observed
	// access frequency f, miss penalty m and eviction cost loss l.
	PathNode = core.Node
	// Placement is the optimizer's result: chosen indices and the
	// achieved reduction of total access cost.
	Placement = core.Placement
)

// OptimizePlacement solves the paper's n-optimization problem exactly: it
// returns the subset of path caches whose joint caching of the object
// maximizes the total access-cost reduction. Nodes are ordered from the
// serving point toward the client.
func OptimizePlacement(path []PathNode) Placement { return core.Optimize(path) }

// PlacementGain evaluates the Δcost objective for an arbitrary placement.
func PlacementGain(path []PathNode, indices []int) float64 { return core.Gain(path, indices) }

// Protocol engine (paper §2.2–2.4): the per-node protocol steps shared by
// all three incarnations. Building a new transport means carrying
// EngineCandidate records up, calling DecidePlacement at the serving node,
// and walking EngineState.DownStep back down — see docs/PROTOCOL.md.
type (
	// EngineState is one node's protocol state: main cache plus d-cache,
	// with the per-node steps (Lookup, UpMiss, DownStep) as methods.
	EngineState = engine.NodeState
	// EngineCandidate is one hop's piggybacked record on the upstream
	// pass: the (f, l, link) triple, or a §2.4 tag.
	EngineCandidate = engine.Candidate
	// EngineTag classifies a hop record (candidate, no-descriptor tag,
	// cannot-fit).
	EngineTag = engine.Tag
	// EngineDecideOptions toggles the monotone frequency clamp and the
	// Theorem-2 prune of the placement decision.
	EngineDecideOptions = engine.DecideOptions
	// EngineServePoint locates the serving node for a placement decision.
	EngineServePoint = engine.ServePoint
	// EngineDownResult reports one hop's downstream-pass outcome.
	EngineDownResult = engine.DownResult
)

// Engine hop-record tags.
const (
	EngineTagCandidate    = engine.TagCandidate
	EngineTagNoDescriptor = engine.TagNoDescriptor
	EngineTagCannotFit    = engine.TagCannotFit
)

// DecidePlacement runs the serving node's placement decision (the §2.2 DP
// over piggybacked candidates, in wire order) and returns the chosen hop
// indices, ascending.
func DecidePlacement(cands []EngineCandidate, opts EngineDecideOptions, at EngineServePoint) []int {
	return engine.Decide(cands, opts, at, nil)
}

// Caching schemes (paper §2.3 and §3.3).
type (
	// Scheme is a complete cache-management algorithm over a node set.
	Scheme = scheme.Scheme
	// SchemePath is a request's delivery path as seen by a scheme.
	SchemePath = scheme.Path
	// SchemeOutcome reports how a request was served.
	SchemeOutcome = scheme.Outcome
	// NodeBudget sizes one cache node (capacity, d-cache entries).
	NodeBudget = scheme.NodeBudget
	// Coordinated is the paper's proposed scheme.
	Coordinated = scheme.Coordinated
)

// NewCoordinated returns the paper's coordinated placement+replacement
// scheme.
func NewCoordinated() *scheme.Coordinated { return scheme.NewCoordinated() }

// NewLRU returns the cache-everywhere LRU baseline.
func NewLRU() *scheme.LRU { return scheme.NewLRU() }

// NewModulo returns the MODULO baseline with the given cache radius.
func NewModulo(radius int) *scheme.Modulo { return scheme.NewModulo(radius) }

// NewLNCR returns the LNC-R cost-based replacement baseline.
func NewLNCR() *scheme.LNCR { return scheme.NewLNCR() }

// NewLFUScheme returns the extra LFU baseline.
func NewLFUScheme() *scheme.LFU { return scheme.NewLFU() }

// NewGDSScheme returns the extra GreedyDual-Size baseline.
func NewGDSScheme() *scheme.GDS { return scheme.NewGDS() }

// NewLRU2H returns the extra admission-controlled LRU baseline (objects
// are cached only on their second sighting).
func NewLRU2H() *scheme.LRU2H { return scheme.NewLRU2H() }

// NewPartial returns a mixed fleet: the given fraction of nodes (seeded
// random choice) run coordinated caching, the rest legacy LRU.
func NewPartial(participation float64, seed int64) *scheme.Partial {
	return scheme.NewPartial(participation, seed)
}

// NewSchemeChecker wraps a scheme with per-request protocol invariant
// checking (test harness; panics on violation).
func NewSchemeChecker(inner Scheme) *scheme.Checker { return scheme.NewChecker(inner) }

// NewScheme constructs a scheme from its report name ("LRU", "MODULO(4)",
// "LNC-R", "COORD", "LFU", "GDS", "LRU-2H").
func NewScheme(name string) (Scheme, error) { return scheme.New(name) }

// DCacheFactory selects a d-cache implementation for the schemes that use
// one (COORD, LNC-R): DCacheLFU is the heap-based default, DCacheLRUStacks
// the paper's O(1) LRU-stack organization (§2.4).
type DCacheFactory = dcache.Factory

// D-cache implementations.
var (
	// DCacheLFU builds the heap-based LFU d-cache.
	DCacheLFU DCacheFactory = dcache.NewFactory
	// DCacheLRUStacks builds the O(1) LRU-stack d-cache.
	DCacheLRUStacks DCacheFactory = dcache.NewLRUStacksFactory
)

// SchemeNames lists the canonical scheme names NewScheme accepts.
func SchemeNames() []string { return scheme.Names() }

// UniformBudgets builds the paper's equal-budget node configuration.
func UniformBudgets(nodes []NodeID, capacity int64, dcacheEntries int) map[NodeID]NodeBudget {
	return scheme.Uniform(nodes, capacity, dcacheEntries)
}

// Architectures (paper §3.2).
type (
	// Network is a cascaded caching architecture.
	Network = topology.Network
	// Route is a distribution-tree path with per-link delays.
	Route = topology.Route
	// TiersConfig parameterizes the en-route topology generator.
	TiersConfig = topology.TiersConfig
	// TreeConfig parameterizes the hierarchical architecture.
	TreeConfig = topology.TreeConfig
	// EnRouteNetwork is the generated en-route topology.
	EnRouteNetwork = topology.EnRoute
	// HierarchyNetwork is the full O-ary cache tree.
	HierarchyNetwork = topology.Hierarchy
	// TopologyDescription summarizes an en-route topology (Table 1).
	TopologyDescription = topology.Description
)

// Node kinds of the en-route topology.
const (
	// WANNodeKind marks backbone nodes.
	WANNodeKind = topology.WANNode
	// MANNodeKind marks metropolitan nodes (client/server attachment).
	MANNodeKind = topology.MANNode
)

// DefaultTiersConfig returns the paper's Table 1 topology parameters.
func DefaultTiersConfig() TiersConfig { return topology.DefaultTiersConfig() }

// DefaultTreeConfig returns the paper's hierarchy parameters (depth 4,
// fanout 3, d = 8 ms, g = 5).
func DefaultTreeConfig() TreeConfig { return topology.DefaultTreeConfig() }

// GenerateTiers builds a random en-route topology in the style of the
// Tiers generator.
func GenerateTiers(cfg TiersConfig, r *rand.Rand) *topology.EnRoute {
	return topology.GenerateTiers(cfg, r)
}

// GenerateTree builds the hierarchical caching architecture.
func GenerateTree(cfg TreeConfig) *topology.Hierarchy { return topology.GenerateTree(cfg) }

// Workloads (paper §3.1, substituted per DESIGN.md).
type (
	// TraceConfig parameterizes the synthetic Zipf workload generator.
	TraceConfig = trace.Config
	// Generator streams a deterministic synthetic request trace.
	Generator = trace.Generator
	// Catalog is a workload's object universe.
	Catalog = trace.Catalog
	// TraceWriter serializes workloads to the text trace format.
	TraceWriter = trace.Writer
	// TraceReader parses the text trace format.
	TraceReader = trace.Reader
)

// NewGenerator builds a synthetic workload generator.
func NewGenerator(cfg TraceConfig) *trace.Generator { return trace.NewGenerator(cfg) }

// NewTraceWriter starts writing a workload (catalog first) to the cascade
// text trace format.
func NewTraceWriter(w io.Writer, cat *Catalog) (*trace.Writer, error) {
	return trace.NewWriter(w, cat)
}

// NewTraceReader parses the catalog of a recorded trace and returns a
// reader streaming its requests.
func NewTraceReader(r io.Reader) (*trace.Reader, error) { return trace.NewReader(r) }

// SquidStats summarizes a Squid access-log conversion.
type SquidStats = trace.SquidStats

// WorkloadStats summarizes a recorded trace (fitted Zipf exponent, size
// profile, coverage).
type WorkloadStats = trace.Stats

// TraceStats scans a recorded trace and derives its workload statistics.
func TraceStats(r io.Reader) (WorkloadStats, error) { return trace.ComputeStats(r) }

// SubtraceStats summarizes a top-N subtrace extraction.
type SubtraceStats = trace.SubtraceStats

// ExtractTopObjects reproduces the paper's §3.1 subtracing: keep only the
// requests for the N most popular objects of a recorded trace, densely
// renumbered. The input must be re-openable (two passes).
func ExtractTopObjects(open func() (io.ReadCloser, error), w io.Writer, topN int) (SubtraceStats, error) {
	return trace.ExtractTopObjects(open, w, topN)
}

// MergeTraces k-way-merges several traces by timestamp into one, with
// identifier namespaces kept disjoint — the paper's §3.1 multi-proxy
// merge.
func MergeTraces(opens []func() (io.ReadCloser, error), w io.Writer) (int, error) {
	return trace.MergeTraces(opens, w)
}

// ConvertSquidLog turns a Squid native access.log into the cascade trace
// format — the bridge from real proxy logs (the role the Boeing traces
// played in the paper) to this repository's tooling.
func ConvertSquidLog(r io.Reader, w io.Writer) (SquidStats, error) {
	return trace.ConvertSquid(r, w)
}

// Workload abstracts a replayable request stream for the experiment
// harness.
type Workload = experiment.Workload

// SyntheticWorkload wraps a generator as an experiment workload.
func SyntheticWorkload(g *Generator) Workload { return experiment.SyntheticWorkload(g) }

// FileWorkload validates a recorded trace file and returns a workload that
// replays it for every experiment cell.
func FileWorkload(path string) (Workload, error) { return experiment.FileWorkload(path) }

// Simulation and metrics (paper §3–4).
type (
	// SimConfig assembles one simulation run.
	SimConfig = sim.Config
	// Simulator replays a request stream through a scheme on a network.
	Simulator = sim.Simulator
	// RequestSource streams requests (satisfied by *Generator).
	RequestSource = sim.Source
	// CostModel selects the measure schemes optimize (§2's generic
	// cost).
	CostModel = sim.CostModel
	// NodeStats is the simulator's per-node accounting (SimConfig.TrackNodes).
	NodeStats = sim.NodeStats
	// Summary is a run's derived per-request averages.
	Summary = metrics.Summary
	// Sample is the accounting of one request.
	Sample = metrics.Sample
)

// Cost models.
const (
	// CostLatency optimizes size-scaled link delay (the paper's choice).
	CostLatency = sim.CostLatency
	// CostBandwidth optimizes bytes moved across links (byte×hops).
	CostBandwidth = sim.CostBandwidth
	// CostHops optimizes pure link crossings.
	CostHops = sim.CostHops
)

// NewSimulator validates the configuration and prepares the caches and
// attachments.
func NewSimulator(cfg SimConfig) (*sim.Simulator, error) { return sim.New(cfg) }

// Analytical approximations (IRM-based, complementing the simulator).
type (
	// AnalysisObject is one object for closed-form analysis (rate, size).
	AnalysisObject = analysis.Object
	// AnalysisPrediction is a hit-ratio estimate for one cache.
	AnalysisPrediction = analysis.Prediction
)

// StaticOptimalHitRatio predicts the best achievable single-cache hit
// ratio under the independent reference model (fractional-knapsack bound).
func StaticOptimalHitRatio(objs []AnalysisObject, capacity int64) AnalysisPrediction {
	return analysis.StaticOptimal(objs, capacity)
}

// CheLRUHitRatio predicts a single LRU cache's steady-state hit ratios via
// Che's approximation.
func CheLRUHitRatio(objs []AnalysisObject, capacity int64) (AnalysisPrediction, error) {
	return analysis.CheLRU(objs, capacity)
}

// CheLRUTreeHitRatios layers Che's approximation over a full O-ary tree of
// LRU caches (level 0 = leaves).
func CheLRUTreeHitRatios(objs []AnalysisObject, capacity int64, depth, fanout, leaves int) ([]AnalysisPrediction, error) {
	return analysis.CheLRUTree(objs, capacity, depth, fanout, leaves)
}

// TreeLatencyPrediction folds per-level hit predictions and uplink delays
// into an expected mean access latency.
func TreeLatencyPrediction(preds []AnalysisPrediction, levelDelays []float64) (float64, error) {
	return analysis.TreeLatency(preds, levelDelays)
}

// Cache coherency substrate (the §2 freshness assumption, made a protocol
// concern): per-object generations owned by an origin-side authority,
// per-node generation floors raised by piggybacked or pushed invalidations,
// and read-side validation in strict mode.
type (
	// CoherencyMode selects the consistency mechanism (CoherencyNone,
	// CoherencyTTL, CoherencyPSI, CoherencyCAS).
	CoherencyMode = coherency.Mode
	// CoherencyConfig parameterizes the synthetic object-update process of
	// a coherency-enabled simulation run (SimConfig.Coherency).
	CoherencyConfig = coherency.Config
	// CoherencyAuthority is the origin-side generation authority: one
	// monotonic generation per object plus the invalidation log whose
	// tail origin responses piggyback.
	CoherencyAuthority = coherency.Authority
	// CoherencyInvalidation is one invalidation-log entry (sequence,
	// object, new generation).
	CoherencyInvalidation = coherency.Invalidation
	// CoherencyView is one node's freshness state: per-object generation
	// floors plus the PSI log cursor.
	CoherencyView = coherency.NodeView
)

// Coherency modes.
const (
	// CoherencyNone is the paper's assumption: copies are always fresh.
	CoherencyNone = coherency.ModeNone
	// CoherencyTTL refetches copies older than a freshness lifetime.
	CoherencyTTL = coherency.ModeTTL
	// CoherencyPSI piggybacks server invalidations on origin responses.
	CoherencyPSI = coherency.ModePSI
	// CoherencyCAS is strict never-serve-stale: each request carries the
	// origin's current generation as a read floor and stale copies
	// self-heal to misses.
	CoherencyCAS = coherency.ModeCAS
)

// NewCoherencyAuthority builds an origin-side generation authority. The
// simulator builds its own for coherency runs (Simulator.Authority); use
// this when driving a Cluster or gateway chain directly.
func NewCoherencyAuthority() *CoherencyAuthority { return coherency.NewAuthority() }

// ParseCoherencyMode parses "none", "ttl", "psi" or "cas".
func ParseCoherencyMode(s string) (CoherencyMode, error) { return coherency.ParseMode(s) }

// FreshnessFrontier quantifies the paper's freshness assumption and the
// frontier of consistency mechanisms above it: stale-hit and refetch ratios
// of coordinated caching under object updates, per coherency mode
// (None / TTL / PSI piggyback / CAS strict).
func FreshnessFrontier(arch Architecture, cfg ExperimentConfig, intervals []float64, size float64) (ResultTable, error) {
	return experiment.FreshnessFrontier(arch, cfg, intervals, size)
}

// Live protocol runtime (the deployable counterpart of the simulator).
type (
	// Cluster is a running set of concurrent cache-node actors
	// implementing the coordinated caching protocol with real message
	// passing.
	Cluster = runtime.Cluster
	// ClusterConfig assembles a Cluster.
	ClusterConfig = runtime.Config
	// ClusterResult reports how the cluster served one request.
	ClusterResult = runtime.Result
	// ClusterStats are cluster-wide counters, including failure-handling
	// accounting (overflows, routed-around hops, origin fallbacks).
	ClusterStats = runtime.Stats
)

// NewCluster starts one actor per cache node of the network. The returned
// cluster serves concurrent Gets; Close shuts it down after in-flight
// requests drain. Cluster.Fail crashes a node (losing its state),
// Cluster.Recover restarts it empty; requests route around dead hops.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return runtime.NewCluster(cfg) }

// Observability: metrics export and request tracing (docs/OBSERVABILITY.md).
type (
	// MetricsRegistry renders registered instruments in the Prometheus
	// text exposition format. Cluster.Metrics and HTTPCacheNode expose
	// their instruments through one; NewMetricsRegistry builds an empty
	// registry for application-level series.
	MetricsRegistry = metrics.Registry
	// MetricsLabel is one name="value" pair attached to a series.
	MetricsLabel = metrics.Label
	// ClusterMetrics pairs cluster-wide counters with per-node detail
	// (Cluster.MetricsSnapshot).
	ClusterMetrics = runtime.ClusterMetrics
	// ClusterNodeMetrics is one runtime node's operational accounting.
	ClusterNodeMetrics = runtime.NodeMetrics

	// RequestTrace is the hop-by-hop record of one sampled request: the
	// upward pass with piggybacked (f, m, l) descriptors, the DP decision,
	// and the downward pass with placements and miss-penalty resets.
	RequestTrace = reqtrace.Trace
	// TraceEvent is one protocol step of a traced request.
	TraceEvent = reqtrace.Event
	// TraceSampler selects requests for tracing (Coordinated.SetTracer).
	TraceSampler = reqtrace.Sampler
)

// NewMetricsRegistry returns an empty Prometheus-text-format registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewTraceSampler traces every stride-th request, capturing at most max
// traces; attach it with Coordinated.SetTracer.
func NewTraceSampler(stride int64, max int) *TraceSampler { return reqtrace.NewSampler(stride, max) }

// SampleRequestTraces replays the configured workload through coordinated
// caching at one relative cache size and returns up to n request traces
// sampled evenly across the run (cascadesim -trace-requests).
func SampleRequestTraces(arch Architecture, cfg ExperimentConfig, size float64, n int) ([]*RequestTrace, error) {
	return experiment.SampleTraces(arch, cfg, size, n)
}

// Protocol flight recorder, online invariant auditing and predicted-vs-
// realized cost accounting (docs/OBSERVABILITY.md).
type (
	// FlightRecorder is a per-node fixed-capacity ring buffer of compact
	// protocol events; attach via Coordinated.SetFlightCapacity,
	// ClusterConfig.FlightCapacity or the gateway's built-in recorder.
	FlightRecorder = flightrec.Recorder
	// FlightEvent is one recorded protocol step.
	FlightEvent = flightrec.Event
	// FlightEventKind classifies a flight event.
	FlightEventKind = flightrec.Kind
	// FlightSnapshot is a dump-friendly view of one node's recorder.
	FlightSnapshot = flightrec.Snapshot

	// Auditor evaluates the paper's analytical guarantees online (Theorem 2
	// local benefit, §2.2 DP optimality spot checks, NCL eviction order,
	// miss-penalty consistency); violations surface as
	// cascade_audit_violations_total{invariant=...}.
	Auditor = audit.Auditor
	// AuditInvariant identifies one monitored guarantee.
	AuditInvariant = audit.Invariant
	// AuditViolation carries one failure's full context to the sink.
	AuditViolation = audit.Violation
	// CostLedger accounts the DP's predicted cost reduction against the
	// savings realized by hits at placed copies, per node.
	CostLedger = audit.Ledger
	// LedgerAccount is one node's accumulated ledger state.
	LedgerAccount = audit.NodeAccount
	// AuditReport summarizes an audited run's per-invariant counts.
	AuditReport = experiment.AuditReport
)

// NewFlightRecorder returns a recorder retaining the last capacity events.
func NewFlightRecorder(capacity int) *FlightRecorder { return flightrec.New(capacity) }

// NewAuditor returns an online invariant auditor whose counters register in
// reg (nil for a detached auditor); attach via Coordinated.SetAuditor or
// ClusterConfig.EnableAudit.
func NewAuditor(reg *MetricsRegistry, labels ...MetricsLabel) *Auditor {
	return audit.New(reg, labels...)
}

// NewCostLedger returns an empty predicted-vs-realized cost ledger; attach
// via Coordinated.SetLedger.
func NewCostLedger() *CostLedger { return audit.NewLedger() }

// AuditInvariants lists every monitored invariant in metric-label order.
func AuditInvariants() []AuditInvariant { return audit.Invariants() }

// LedgerStudy replays the workload through audited coordinated caching and
// tabulates each node's predicted-vs-realized placement accounting
// (cascadesim -exp ledger).
func LedgerStudy(arch Architecture, cfg ExperimentConfig, size float64) (ResultTable, AuditReport, error) {
	return experiment.LedgerStudy(arch, cfg, size)
}

// DumpFlightRecorders replays the workload through coordinated caching with
// per-node flight recorders attached and returns every node's snapshot
// (cascadesim -flight-dump).
func DumpFlightRecorders(arch Architecture, cfg ExperimentConfig, size float64, capacity int) ([]FlightSnapshot, AuditReport, error) {
	return experiment.FlightDump(arch, cfg, size, capacity)
}

// Cascade-wide span tracing: per-request protocol-phase spans under one
// 128-bit trace ID, propagated hop to hop and tail-sampled into per-node
// rings (docs/OBSERVABILITY.md).
type (
	// Span is one protocol-phase record of a traced request at one node.
	Span = span.Span
	// SpanPhase classifies a span (lookup, up, decide, down, body, …).
	SpanPhase = span.Phase
	// SpanPolicy declares a tracer's tail-sampling policy: the keep rate
	// for unremarkable traces and the forced-keep slow threshold.
	SpanPolicy = span.Policy
	// SpanTracer mints trace IDs, accumulates per-request spans and
	// applies the tail-sampling verdict; attach via Coordinated.SetSpans,
	// ClusterConfig.SpanCapacity or HTTPCacheNode.EnableSpans.
	SpanTracer = span.Tracer
	// SpanSnapshot is the dump encoding of one node's span ring.
	SpanSnapshot = span.Snapshot
	// SpanTraceID identifies one request's cascade-wide trace.
	SpanTraceID = span.TraceID
)

// NewSpanTracer returns a span tracer with the given tail-sampling policy.
func NewSpanTracer(p SpanPolicy) *SpanTracer { return span.NewTracer(p) }

// DumpSpanRings replays the workload through coordinated caching with
// cascade-wide span tracing attached — tail sampling at rate, a per-node
// ring of the given capacity — and returns every node's span snapshot
// (cascadesim -span-dump).
func DumpSpanRings(arch Architecture, cfg ExperimentConfig, size float64, capacity int, rate float64) ([]SpanSnapshot, error) {
	return experiment.SpanDump(arch, cfg, size, capacity, rate)
}

// Fault injection (deterministic chaos hooks shared by the runtime and the
// HTTP gateway).
type (
	// FaultInjector decides per message whether to drop, delay, crash the
	// receiver, or report saturation — deterministically from a seed.
	FaultInjector = fault.Injector
	// FaultStats counts the injector's interventions.
	FaultStats = fault.Stats
	// FaultRoundTripper wires an injector into an http.Client transport.
	FaultRoundTripper = fault.RoundTripper
)

// NewFaultInjector builds a rule-free injector; add rules with the
// WithDrop/WithDelay/WithDropEvery/WithCrashOn builders.
func NewFaultInjector(seed int64) *FaultInjector { return fault.New(seed) }

// HTTP gateway incarnation of the protocol (piggybacking as headers).
type (
	// HTTPCacheNode is an http.Handler cache gateway; chain instances in
	// front of an HTTPOrigin to build a cascaded HTTP cache.
	HTTPCacheNode = httpgw.Node
	// HTTPOrigin is the content source handler.
	HTTPOrigin = httpgw.Origin
	// UpstreamHealthConfig tunes a gateway node's active upstream prober
	// (HTTPCacheNode.StartUpstreamHealthCheck).
	UpstreamHealthConfig = httpgw.UpstreamHealthConfig
)

// Protocol header names used by the HTTP gateway.
const (
	// HTTPHeaderPath carries the piggybacked per-hop records upstream.
	HTTPHeaderPath = httpgw.HeaderPath
	// HTTPHeaderPlace carries the placement decision downstream.
	HTTPHeaderPlace = httpgw.HeaderPlace
	// HTTPHeaderPenalty carries the accumulated miss-penalty counter.
	HTTPHeaderPenalty = httpgw.HeaderPenalty
	// HTTPHeaderHit names the serving node ("origin" for the source).
	HTTPHeaderHit = httpgw.HeaderHit
	// HTTPHeaderDegraded marks responses served outside the protocol
	// while the upstream chain was unreachable.
	HTTPHeaderDegraded = httpgw.HeaderDegraded
	// HTTPHeaderTrace is the opt-in debug header: send any value to
	// receive a JSON event log of both protocol passes in the response.
	HTTPHeaderTrace = httpgw.HeaderTrace
	// HTTPHeaderPredict carries the decision's predicted Δcost term per
	// chosen node downstream, so each placing node can book its own cost
	// ledger claim at apply time.
	HTTPHeaderPredict = httpgw.HeaderPredict
	// HTTPHeaderFrame carries the binary wire frame that replaces the
	// textual Path/Place/Predict headers between binary-capable hops.
	HTTPHeaderFrame = httpgw.HeaderFrame
	// HTTPHeaderAccept advertises binary-frame support ("bf1"/"bf2") per
	// hop.
	HTTPHeaderAccept = httpgw.HeaderAccept
	// HTTPHeaderGen carries a coherency generation: a CAS read floor on
	// requests, the served copy's generation on responses.
	HTTPHeaderGen = httpgw.HeaderGen
	// HTTPHeaderInval piggybacks the origin's invalidation-log tail
	// downstream as "head|seq:obj:gen,...".
	HTTPHeaderInval = httpgw.HeaderInval
)

// DefaultUpstreamTimeout bounds gateway upstream fetches when no explicit
// Client is configured.
const DefaultUpstreamTimeout = httpgw.DefaultUpstreamTimeout

// NewHTTPCacheNode builds a gateway node: a cache of capacity bytes (plus a
// dEntries-descriptor d-cache) forwarding misses to upstream across a link
// of cost upCost.
func NewHTTPCacheNode(id NodeID, upstream string, upCost float64, capacity int64, dEntries int, clock func() float64) *HTTPCacheNode {
	return httpgw.NewNode(id, upstream, upCost, capacity, dEntries, clock)
}

// NewHTTPOrigin builds a synthetic origin handler; size maps objects to
// payload lengths. The origin decides placements for whole-chain misses;
// EnableObservability audits those decisions and serves the metrics and
// flight-recorder routes on its listener.
func NewHTTPOrigin(size func(ObjectID) int) *HTTPOrigin { return &httpgw.Origin{Size: size} }

// NewHTTPFileOrigin builds an origin handler serving files beneath dir, so
// a gateway chain can front arbitrary content trees.
func NewHTTPFileOrigin(dir string) *HTTPOrigin { return &httpgw.Origin{Dir: dir} }

// WallClock returns a seconds-since-start clock for live components.
func WallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// Experiment harness (paper figures and studies).
type (
	// ExperimentConfig parameterizes a full evaluation.
	ExperimentConfig = experiment.Config
	// Architecture selects en-route or hierarchical caching.
	Architecture = experiment.Arch
	// Sweep is a (cache size × scheme) result grid.
	Sweep = experiment.Sweep
	// SweepCell is one simulation result within a sweep.
	SweepCell = experiment.Cell
	// Figure identifies one of the paper's evaluation figures.
	Figure = experiment.Figure
	// ResultTable is a formatted experiment result.
	ResultTable = experiment.Table
)

// Architecture values.
const (
	ArchEnRoute   = experiment.EnRoute
	ArchHierarchy = experiment.Hierarchy
)

// Chaos harness (failure-aware replay through the live runtime).
type (
	// ChaosConfig parameterizes a fault-injection replay.
	ChaosConfig = experiment.ChaosConfig
	// ChaosResult pairs the no-fault and faulted replays.
	ChaosResult = experiment.ChaosResult
	// ChaosRun is one replay's accounting.
	ChaosRun = experiment.ChaosRun
)

// ChaosStudy replays the workload through the actor runtime twice — clean,
// and with a deterministic subset of nodes crashed mid-trace and later
// recovered — and tabulates byte hit ratio, degraded serves and
// routed-around hops per phase.
func ChaosStudy(cfg ChaosConfig) (ChaosResult, ResultTable, error) {
	return experiment.ChaosStudy(cfg)
}

// Rolling-reconfiguration harness (control-plane upgrade replay).
type (
	// RollingConfig parameterizes a rolling-upgrade replay.
	RollingConfig = experiment.RollingConfig
	// RollingResult is the replay's phase-split accounting.
	RollingResult = experiment.RollingResult
)

// RollingUpgradeStudy replays the workload through the live actor runtime
// while every cache node is drained and re-admitted in batches — a rolling
// upgrade under sustained load — with the active health checker running and
// the auditor and cost ledger on throughout (cascadesim -exp rolling).
func RollingUpgradeStudy(cfg RollingConfig) (RollingResult, ResultTable, error) {
	return experiment.RollingUpgradeStudy(cfg)
}

// Figures lists every figure of the paper's evaluation section.
func Figures() []Figure { return experiment.Figures }

// FigureByID returns the figure definition for an ID like "fig6a".
func FigureByID(id string) (Figure, bool) { return experiment.FigureByID(id) }

// RunSweep simulates every (cache size, scheme) pair for one architecture.
func RunSweep(arch Architecture, cfg ExperimentConfig, progress func(SweepCell)) (*Sweep, error) {
	return experiment.RunSweep(arch, cfg, progress)
}

// RadiusStudy reproduces the MODULO cache-radius sensitivity analysis.
func RadiusStudy(arch Architecture, cfg ExperimentConfig, radii []int) (ResultTable, error) {
	return experiment.RadiusStudy(arch, cfg, radii)
}

// DCacheStudy reproduces the d-cache sizing analysis.
func DCacheStudy(arch Architecture, cfg ExperimentConfig, factors []float64, size float64) (ResultTable, error) {
	return experiment.DCacheStudy(arch, cfg, factors, size)
}

// OverheadStudy quantifies the coordinated protocol's piggyback overhead.
func OverheadStudy(arch Architecture, cfg ExperimentConfig) (ResultTable, error) {
	return experiment.OverheadStudy(arch, cfg)
}

// TreeShapeStudy sweeps the hierarchy's delay growth factor and reports
// LRU vs COORD latency — the paper's "similar trends for a wide range of d
// and g values" claim.
func TreeShapeStudy(cfg ExperimentConfig, growths []float64, size float64) (ResultTable, error) {
	return experiment.TreeShapeStudy(cfg, growths, size)
}

// ZipfStudy sweeps the workload's Zipf exponent and reports LRU vs COORD
// latency — the robustness of the comparison across realistic skews.
func ZipfStudy(cfg ExperimentConfig, thetas []float64, size float64) (ResultTable, error) {
	return experiment.ZipfStudy(cfg, thetas, size)
}

// LevelStudy reports which hierarchy level serves requests, per scheme —
// the §4.2 mechanics made visible.
func LevelStudy(cfg ExperimentConfig, size float64) (ResultTable, error) {
	return experiment.LevelStudy(cfg, size)
}

// LocalityStudy sweeps the workload's community-of-interest strength and
// reports LRU vs MODULO vs COORD performance.
func LocalityStudy(cfg ExperimentConfig, localities []float64, size float64) (ResultTable, error) {
	return experiment.LocalityStudy(cfg, localities, size)
}

// AnalysisStudy sets the layered Che approximation beside measured
// per-level LRU hit ratios on the hierarchy.
func AnalysisStudy(cfg ExperimentConfig, size float64) (ResultTable, error) {
	return experiment.AnalysisStudy(cfg, size)
}

// PartialDeploymentStudy sweeps the fraction of caches running the
// coordinated protocol (incremental rollout).
func PartialDeploymentStudy(arch Architecture, cfg ExperimentConfig, fractions []float64, size float64) (ResultTable, error) {
	return experiment.PartialDeploymentStudy(arch, cfg, fractions, size)
}

// WindowKStudy sweeps the frequency estimator's sliding-window size K for
// the coordinated scheme.
func WindowKStudy(arch Architecture, cfg ExperimentConfig, ks []int, size float64) (ResultTable, error) {
	return experiment.WindowKStudy(arch, cfg, ks, size)
}

// CostModelStudy runs coordinated caching under each interpretation of the
// generic cost (latency, bandwidth, hops) and reports all three measures.
func CostModelStudy(arch Architecture, cfg ExperimentConfig, size float64) (ResultTable, error) {
	return experiment.CostModelStudy(arch, cfg, size)
}

// AdaptivityStudy injects a mid-trace flash crowd and reports per-window
// latency per scheme — transient behaviour the steady-state figures hide.
func AdaptivityStudy(arch Architecture, cfg ExperimentConfig, size float64, windows int) (ResultTable, error) {
	return experiment.AdaptivityStudy(arch, cfg, size, windows)
}

// CapacityStudy redistributes a fixed total budget across hierarchy levels
// (uniform / leaf-heavy / root-heavy / delay-proportional) and compares
// LRU and COORD under each profile.
func CapacityStudy(cfg ExperimentConfig, size float64) (ResultTable, error) {
	return experiment.CapacityStudy(cfg, size)
}

// Replicate runs one figure's sweep under several seeds and reports
// per-cell mean ± standard deviation — error bars for the paper's
// single-run plots.
func Replicate(arch Architecture, cfg ExperimentConfig, fig Figure, runs int) (ResultTable, error) {
	return experiment.Replicate(arch, cfg, fig, runs)
}

// BaselineDrift describes one result cell that moved beyond tolerance
// relative to a stored baseline CSV.
type BaselineDrift = experiment.Drift

// CompareBaselineCSV checks a result table against a previously exported
// CSV and returns the cells whose relative change exceeds tolerance.
func CompareBaselineCSV(t ResultTable, baseline io.Reader, tolerance float64) ([]BaselineDrift, error) {
	return experiment.CompareCSV(t, baseline, tolerance)
}

// WriteHTMLReport renders result tables as one self-contained HTML
// document with inline SVG charts.
func WriteHTMLReport(w io.Writer, title string, tables []ResultTable) error {
	return experiment.WriteHTMLReport(w, title, tables)
}

// Table1 generates and describes an en-route topology in the terms of the
// paper's Table 1.
func Table1(cfg ExperimentConfig) (TopologyDescription, ResultTable) {
	return experiment.Table1(cfg)
}

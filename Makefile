# Tier-1 verification gate: everything a change must pass before merging.
# `make check` = vet + build + race-enabled tests + observability smoke +
# benchmark regression gate for the whole module.

GO ?= go

# Benchmark regression gate. `make bench` reruns the figure and throughput
# benches and refreshes the committed BENCH_2.json baseline; `make
# bench-check` reruns only the gated throughput benches and fails when they
# regress beyond the threshold (see cmd/benchcheck). BENCH_TIME trades
# precision for time.
BENCH_TIME ?= 1s
BENCH_OUT  ?= bench_latest.txt

.PHONY: check vet lint build test race observe conformance bench bench-check

check: vet lint build race observe conformance bench-check

# Import guard: the protocol incarnations (scheme, sim, runtime, httpgw)
# must reach the placement optimizer only through internal/engine, never by
# importing internal/core directly (driver: cmd/importguard).
lint:
	$(GO) run ./cmd/importguard

# Cross-incarnation conformance: the same trace replayed through the
# simulator scheme, the actor cluster and a live HTTP gateway chain must
# agree on every request's serving node and placement set, under the race
# detector (suite: internal/conformance).
conformance:
	$(GO) test -race -count=1 ./internal/conformance/

# Observability smoke: boot a real origin → gateway chain, scrape the
# Prometheus endpoints, round-trip the X-Cascade-Trace debug header
# (driver: cmd/observesmoke; docs/OBSERVABILITY.md documents the series).
observe:
	$(GO) run ./cmd/observesmoke -go $(GO)

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCH_TIME) -run=^$$ . ./internal/core ./internal/cache | tee $(BENCH_OUT)
	$(GO) run ./cmd/benchcheck -update -in $(BENCH_OUT)

bench-check:
	$(GO) test -bench='BenchmarkSimulatorThroughput|BenchmarkClusterThroughput' -benchmem -benchtime=$(BENCH_TIME) -run=^$$ . | tee $(BENCH_OUT)
	$(GO) run ./cmd/benchcheck -in $(BENCH_OUT)

# Tier-1 verification gate: everything a change must pass before merging.
# `make check` = vet + build + race-enabled tests + observability smoke +
# benchmark regression gate for the whole module.

GO ?= go

# Benchmark regression gate. `make bench` reruns the figure and throughput
# benches and refreshes the committed BENCH_2.json baseline; `make
# bench-check` reruns only the gated throughput benches and fails when they
# regress beyond the threshold (see cmd/benchcheck). BENCH_TIME trades
# precision for time.
BENCH_TIME ?= 1s
BENCH_OUT  ?= bench_latest.txt

.PHONY: check vet lint build test race observe conformance rolling bench bench-check

check: vet lint build race observe conformance rolling bench-check

# Import guard: the protocol incarnations (scheme, sim, runtime, httpgw)
# must reach the placement optimizer only through internal/engine, never by
# importing internal/core directly (driver: cmd/importguard).
lint:
	$(GO) run ./cmd/importguard

# Cross-incarnation conformance: the same trace replayed through the
# simulator scheme, the actor cluster and a live HTTP gateway chain must
# agree on every request's serving node and placement set, under the race
# detector (suite: internal/conformance).
conformance:
	$(GO) test -race -count=1 ./internal/conformance/

# Rolling-reconfiguration smoke (not tier-1): upgrade the 100-node default
# cascade one batch at a time under sustained load; the job fails on any
# audit violation, a hit-rate dip beyond 5 percentage points, or a vacuous
# cost ledger (driver: cmd/cascadesim -exp rolling).
rolling:
	$(GO) run ./cmd/cascadesim -exp rolling -arch enroute \
		-objects 2000 -requests 30000 -clients 200 -servers 40

# Observability smoke: boot a real origin → gateway chain, scrape the
# Prometheus endpoints, round-trip the X-Cascade-Trace debug header
# (driver: cmd/observesmoke; docs/OBSERVABILITY.md documents the series).
observe:
	$(GO) run ./cmd/observesmoke -go $(GO)

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCH_TIME) -run=^$$ . ./internal/core ./internal/cache | tee $(BENCH_OUT)
	$(GO) run ./cmd/benchcheck -update -in $(BENCH_OUT)

# The gate repeats each benchmark and judges the best run: noise from a
# loaded machine only ever inflates ns/op, so the minimum is the fair
# estimate against a baseline that was recorded on an idle one.
bench-check:
	$(GO) test -bench='BenchmarkSimulatorThroughput|BenchmarkClusterThroughput' -benchmem -benchtime=$(BENCH_TIME) -count=4 -run=^$$ . | tee $(BENCH_OUT)
	$(GO) run ./cmd/benchcheck -in $(BENCH_OUT)

# Tier-1 verification gate: everything a change must pass before merging.
# `make check` = vet + build + race-enabled tests + observability smoke +
# benchmark regression gate for the whole module.

GO ?= go

# Benchmark regression gate. `make bench` reruns the figure and throughput
# benches and refreshes the committed BENCH_2.json baseline; `make
# bench-check` reruns only the gated throughput benches and fails when they
# regress beyond the threshold (see cmd/benchcheck). BENCH_TIME trades
# precision for time.
BENCH_TIME ?= 1s
BENCH_OUT  ?= bench_latest.txt

# Latency SLO gate for `make loadtest`: measured p99 may drift up to this
# multiple of the committed baseline before the build fails. Percentiles on
# a shared machine are far noisier than ns/op microbenchmarks, hence the
# generous factor.
SLO_THRESHOLD ?= 4.0
LOADTEST_OUT  ?= loadtest_latest.txt

.PHONY: check vet lint build test race observe conformance dataplane rolling coherency bench bench-check loadtest slo

check: vet lint build race observe conformance dataplane rolling coherency bench-check loadtest slo

# Import guard: the protocol incarnations (scheme, sim, runtime, httpgw)
# must reach the placement optimizer only through internal/engine, never by
# importing internal/core directly (driver: cmd/importguard). Metric lint:
# registered series names and docs/OBSERVABILITY.md must agree in both
# directions (driver: cmd/metriclint).
lint:
	$(GO) run ./cmd/importguard
	$(GO) run ./cmd/metriclint

# Cross-incarnation conformance: the same trace replayed through the
# simulator scheme, the actor cluster and a live HTTP gateway chain must
# agree on every request's serving node and placement set, under the race
# detector (suite: internal/conformance).
conformance:
	$(GO) test -race -count=1 ./internal/conformance/

# Data-plane conformance: full-body hashing across the gateway chain
# (streamed bodies byte-identical to the origin's synthetic payloads),
# Range-segmented large-object reassembly at zero audit violations, and
# disk-spill round trips served without an origin fetch (suite:
# internal/conformance, TestDataPlane*; spec: docs/DATAPLANE.md).
dataplane:
	$(GO) test -race -count=1 -run 'TestDataPlane' ./internal/conformance/

# Rolling-reconfiguration smoke (not tier-1): upgrade the 100-node default
# cascade one batch at a time under sustained load; the job fails on any
# audit violation, a hit-rate dip beyond 5 percentage points, or a vacuous
# cost ledger (driver: cmd/cascadesim -exp rolling).
rolling:
	$(GO) run ./cmd/cascadesim -exp rolling -arch enroute \
		-objects 2000 -requests 30000 -clients 200 -servers 40

# Coherency gate: the generation substrate's unit suite, the gateway's
# invalidation/header/spill/snapshot paths and the cluster's concurrent
# write hammer under the race detector, then a CAS-strict load run — any
# response served below a completed write's generation fails the build.
# (The cross-incarnation coherency conformance replay is covered by the
# `conformance` target, which runs the whole suite.)
coherency:
	$(GO) test -race -count=1 ./internal/coherency/
	$(GO) test -race -count=1 -run 'Coherency|Invalidat|Stale|Snapshot' \
		./internal/httpgw/ ./internal/runtime/
	$(GO) run ./cmd/cascadeload -requests 3000 -warmup 500 -users 4 \
		-objects 1000 -capacity 2MB -nodes 3 -shards 8 -seed 1 \
		-write-ratio 0.05

# Observability smoke: boot a real origin → gateway chain, scrape the
# Prometheus endpoints, round-trip the X-Cascade-Trace debug header
# (driver: cmd/observesmoke; docs/OBSERVABILITY.md documents the series).
observe:
	$(GO) run ./cmd/observesmoke -go $(GO)

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCH_TIME) -run=^$$ . ./internal/core ./internal/cache | tee $(BENCH_OUT)
	$(GO) run ./cmd/benchcheck -update -in $(BENCH_OUT)

# The gate repeats each benchmark and judges the best run: noise from a
# loaded machine only ever inflates ns/op, so the minimum is the fair
# estimate against a baseline that was recorded on an idle one.
bench-check:
	$(GO) test -bench='BenchmarkSimulatorThroughput|BenchmarkClusterThroughput' -benchmem -benchtime=$(BENCH_TIME) -count=4 -run=^$$ . | tee $(BENCH_OUT)
	$(GO) run ./cmd/benchcheck -in $(BENCH_OUT)

# End-to-end latency SLO gate: cascadeload drives an in-process 3-gateway
# chain (sharded, binary framing) with a Zipf closed loop and emits
# benchmark-format percentile lines; benchcheck compares p99 against the
# committed baseline in BENCH_2.json. Only the p99 line gates — p999 of a
# smoke-sized run is a handful of samples and would flap. Methodology:
# docs/PERFORMANCE.md.
loadtest:
	$(GO) run ./cmd/cascadeload -requests 4000 -warmup 1000 -users 4 \
		-objects 2000 -capacity 2MB -nodes 3 -shards 8 -seed 1 \
		-bench-out $(LOADTEST_OUT)
	$(GO) run ./cmd/benchcheck -in $(LOADTEST_OUT) \
		-gate BenchmarkCascadeLoadP99 -threshold $(SLO_THRESHOLD) \
		-allocs-ceiling "" -bytes-ceiling ""

# Live SLO gate: cascademon (the federating monitor console) watches an
# in-process origin → 3-gateway chain under closed-loop load and must pass
# at the declared SLOs — and fail when the hit-ratio floor is raised above
# what any cascade can reach (negative test). Runs the exact shipping
# monitor loop (cmd/cascademon run()); docs/OBSERVABILITY.md declares the
# SLOs and burn-rate discipline.
slo:
	$(GO) test -race -count=1 -run 'TestSLOGate' ./cmd/cascademon/

package cascade_test

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"cascade"
)

// These tests exercise the public facade exactly as a downstream user
// would: everything goes through package cascade, nothing through
// internal/*.

func TestAPIPlacementOptimizer(t *testing.T) {
	path := []cascade.PathNode{
		{Freq: 5, MissPenalty: 1, CostLoss: 10},
		{Freq: 2, MissPenalty: 3, CostLoss: 0.5},
	}
	p := cascade.OptimizePlacement(path)
	if len(p.Indices) != 1 || p.Indices[0] != 1 {
		t.Fatalf("placement = %+v", p)
	}
	if g := cascade.PlacementGain(path, p.Indices); g != p.Gain {
		t.Fatalf("gain mismatch: %v vs %v", g, p.Gain)
	}
}

func TestAPISchemeFactory(t *testing.T) {
	for _, name := range cascade.SchemeNames() {
		s, err := cascade.NewScheme(name)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("NewScheme(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := cascade.NewScheme("nonsense"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestAPIEndToEndSimulation(t *testing.T) {
	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects: 500, Servers: 20, Clients: 50, Requests: 20000, Duration: 3600, Seed: 2,
	})
	net := cascade.GenerateTiers(cascade.DefaultTiersConfig(), rand.New(rand.NewSource(2)))
	sim, err := cascade.NewSimulator(cascade.SimConfig{
		Scheme:            cascade.NewCoordinated(),
		Network:           net,
		Catalog:           gen.Catalog(),
		RelativeCacheSize: 0.02,
		Seed:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, replayed := sim.Run(gen, gen.Len()/2)
	if replayed != 20000 || sum.Requests != 10000 {
		t.Fatalf("replayed=%d recorded=%d", replayed, sum.Requests)
	}
	if sum.ByteHitRatio <= 0 || sum.AvgLatency <= 0 {
		t.Fatalf("degenerate summary: %+v", sum)
	}
}

func TestAPICoherency(t *testing.T) {
	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects: 300, Servers: 10, Clients: 30, Requests: 15000, Duration: 7200, Seed: 3,
	})
	net := cascade.GenerateTree(cascade.DefaultTreeConfig())
	sim, err := cascade.NewSimulator(cascade.SimConfig{
		Scheme:            cascade.NewCoordinated(),
		Network:           net,
		Catalog:           gen.Catalog(),
		RelativeCacheSize: 0.05,
		Seed:              3,
		Coherency: &cascade.CoherencyConfig{
			Mode:                 cascade.CoherencyPSI,
			ObjectUpdateInterval: 600, // aggressive updates to force staleness
			Seed:                 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := sim.Run(gen, gen.Len()/2)
	if sum.StaleHitRatio <= 0 {
		t.Fatalf("aggressive updates yielded zero staleness: %+v", sum)
	}
	if sum.StaleHitRatio > 0.5 {
		t.Fatalf("PSI left staleness unreasonably high: %v", sum.StaleHitRatio)
	}

	// CAS-strict through the same facade: staleness is zero by construction.
	simCAS, err := cascade.NewSimulator(cascade.SimConfig{
		Scheme:            cascade.NewCoordinated(),
		Network:           net,
		Catalog:           gen.Catalog(),
		RelativeCacheSize: 0.05,
		Seed:              3,
		Coherency: &cascade.CoherencyConfig{
			Mode:                 cascade.CoherencyCAS,
			ObjectUpdateInterval: 600,
			Seed:                 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Reset()
	sumCAS, _ := simCAS.Run(gen, gen.Len()/2)
	if sumCAS.StaleHitRatio != 0 {
		t.Fatalf("CAS-strict served stale hits: %v", sumCAS.StaleHitRatio)
	}
	if mode, err := cascade.ParseCoherencyMode("cas"); err != nil || mode != cascade.CoherencyCAS {
		t.Fatalf("ParseCoherencyMode(cas) = %v, %v", mode, err)
	}
}

func TestAPIClusterRoundTrip(t *testing.T) {
	net := cascade.GenerateTree(cascade.TreeConfig{Depth: 3, Fanout: 2, BaseDelay: 1, Growth: 2})
	cluster, err := cascade.NewCluster(cascade.ClusterConfig{
		Network:       net,
		CacheBytes:    10000,
		DCacheEntries: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	leaf := net.ClientAttachPoints()[0]
	res, err := cluster.Get(context.Background(), leaf, cascade.NoNode, 7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != cascade.NoNode {
		t.Fatalf("first request not origin-served: %+v", res)
	}
}

func TestAPITraceRoundTripAndWorkload(t *testing.T) {
	gen := cascade.NewGenerator(cascade.TraceConfig{
		Objects: 100, Servers: 5, Clients: 10, Requests: 300, Duration: 60, Seed: 4,
	})
	var buf bytes.Buffer
	w, err := cascade.NewTraceWriter(&buf, gen.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.WriteRequest(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := cascade.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Catalog().Objects) != 100 {
		t.Fatalf("catalog objects = %d", len(r.Catalog().Objects))
	}
}

func TestAPISquidConversion(t *testing.T) {
	log := "894974483.921 235 10.0.0.1 TCP_MISS/200 4322 GET http://a.com/x - DIRECT/1.2.3.4 text/html\n"
	var out bytes.Buffer
	stats, err := cascade.ConvertSquidLog(strings.NewReader(log), &out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1 || stats.Objects != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAPIExperimentSweepAndFigures(t *testing.T) {
	cfg := cascade.ExperimentConfig{
		Trace: cascade.TraceConfig{
			Objects: 200, Servers: 10, Clients: 20, Requests: 5000, Duration: 1200, Seed: 5,
		},
		CacheSizes: []float64{0.02},
		Schemes:    []string{"LRU", "COORD"},
	}
	sweep, err := cascade.RunSweep(cascade.ArchEnRoute, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cascade.Figures()) != 10 {
		t.Fatalf("figure registry has %d entries", len(cascade.Figures()))
	}
	fig, ok := cascade.FigureByID("fig6a")
	if !ok {
		t.Fatal("fig6a missing")
	}
	tab := sweep.Project(fig)
	var txt bytes.Buffer
	if err := tab.Format(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "COORD") {
		t.Fatalf("table missing scheme column:\n%s", txt.String())
	}
	if _, tab1 := cascade.Table1(cfg); len(tab1.Rows) == 0 {
		t.Fatal("Table1 empty")
	}
}

func TestAPIDefaultsMatchPaper(t *testing.T) {
	tiers := cascade.DefaultTiersConfig()
	if tiers.WANNodes != 50 || tiers.MANs*tiers.NodesPerMAN != 50 {
		t.Fatalf("tiers defaults: %+v", tiers)
	}
	tree := cascade.DefaultTreeConfig()
	if tree.Depth != 4 || tree.Fanout != 3 || tree.BaseDelay != 0.008 || tree.Growth != 5 {
		t.Fatalf("tree defaults: %+v", tree)
	}
}
